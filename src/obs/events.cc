#include "obs/events.hh"

#include "common/logging.hh"

namespace dfault::obs {

EventSink &
EventSink::instance()
{
    static EventSink sink;
    return sink;
}

EventSink::~EventSink()
{
    close();
}

void
EventSink::open(const std::string &path)
{
    // fatal() runs exit handlers, and the static sink's destructor
    // takes mutex_ — so the failure path must not hold the lock.
    std::FILE *file = nullptr;
    if (path != "-") {
        file = std::fopen(path.c_str(), "w");
        if (file == nullptr)
            DFAULT_FATAL("cannot open trace output '", path, "'");
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (owned_ && out_ != nullptr)
        std::fclose(out_);
    if (file == nullptr) {
        out_ = stderr;
        owned_ = false;
    } else {
        out_ = file;
        owned_ = true;
    }
    opened_ = std::chrono::steady_clock::now();
    emitted_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void
EventSink::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_.store(false, std::memory_order_relaxed);
    if (out_ != nullptr) {
        std::fflush(out_);
        // JSONL is append-only, so there is no atomic-replace story
        // here; the best we can do is notice a torn stream and say so.
        if (owned_ && std::ferror(out_) != 0)
            DFAULT_WARN("event stream had write errors; "
                        "the JSONL tail may be truncated");
        if (owned_)
            std::fclose(out_);
    }
    out_ = nullptr;
    owned_ = false;
}

void
EventSink::emit(std::string_view type, const JsonWriter &fields)
{
    if (!enabled())
        return;
    // Interleaving invariant (exercised by test_event_sink_mt): the
    // whole record — envelope, spliced fields, trailing newline — is
    // assembled into one buffer and handed to a single fwrite while
    // mutex_ is held. Nothing may write to out_ between lock and
    // fwrite, and seq must be drawn under the same lock so sequence
    // order matches file order. Any refactor that splits the write or
    // moves the fetch_add outside the lock breaks one-line-per-record.
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_ == nullptr)
        return;
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - opened_)
                         .count();
    const std::uint64_t seq =
        emitted_.fetch_add(1, std::memory_order_relaxed);
    JsonWriter line;
    line.field("type", type);
    line.field("seq", seq);
    line.field("t", t);
    std::string record = line.str();
    if (!fields.empty()) {
        // Splice the producer's fields into the envelope object.
        record.pop_back();
        record += ',';
        const std::string body = fields.str();
        record.append(body, 1, body.size() - 1);
    }
    record += '\n';
    std::fwrite(record.data(), 1, record.size(), out_);
}

namespace {
std::atomic<bool> g_progress{false};
} // namespace

void
setProgress(bool enabled)
{
    g_progress.store(enabled, std::memory_order_relaxed);
}

bool
progressEnabled()
{
    return g_progress.load(std::memory_order_relaxed) && !detail::quiet();
}

void
progress(const std::string &msg)
{
    if (!progressEnabled())
        return;
    const std::string line = "progress: " + msg + "\n";
    std::fputs(line.c_str(), stderr);
}

} // namespace dfault::obs
