#include "obs/alloc_tracker.hh"

#include <atomic>
#include <cstdlib>
#include <new>

namespace dfault::obs {

namespace {

std::atomic<bool> g_enabled{false};

// Plain trivially-constructed/destructed thread_locals: the operator
// new replacement below must never allocate on its own path, and a
// POD thread_local needs no dynamic init that could recurse into it.
thread_local std::uint64_t t_bytes = 0;
thread_local std::uint64_t t_allocs = 0;

inline void
tally(std::size_t size)
{
    if (g_enabled.load(std::memory_order_relaxed)) {
        t_bytes += size;
        ++t_allocs;
    }
}

void *
trackedAlloc(std::size_t size)
{
    // malloc(0) may return nullptr legitimately; operator new must
    // return a unique pointer instead.
    void *p = std::malloc(size != 0 ? size : 1);
    if (p != nullptr)
        tally(size);
    return p;
}

void *
trackedAlignedAlloc(std::size_t size, std::size_t align)
{
    void *p = nullptr;
    if (align < sizeof(void *))
        align = sizeof(void *);
    if (posix_memalign(&p, align, size != 0 ? size : align) != 0)
        return nullptr;
    tally(size);
    return p;
}

} // namespace

void
AllocTracker::enable()
{
    g_enabled.store(true, std::memory_order_relaxed);
}

void
AllocTracker::disable()
{
    g_enabled.store(false, std::memory_order_relaxed);
}

bool
AllocTracker::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

AllocTracker::Totals
AllocTracker::threadTotals()
{
    return {t_bytes, t_allocs};
}

void
AllocTracker::resetThread()
{
    t_bytes = 0;
    t_allocs = 0;
}

} // namespace dfault::obs

// Replaceable global allocation functions. The full family is
// replaced together so new/delete stay a matched malloc/free pair.
// Sanitizer builds intercept malloc/free underneath these, so ASan
// and TSan diagnostics keep working through the hook.

void *
operator new(std::size_t size)
{
    void *p = dfault::obs::trackedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = dfault::obs::trackedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return dfault::obs::trackedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return dfault::obs::trackedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = dfault::obs::trackedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *p = dfault::obs::trackedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return dfault::obs::trackedAlignedAlloc(
        size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return dfault::obs::trackedAlignedAlloc(
        size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
