#include "obs/span.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace dfault::obs {

thread_local std::shared_ptr<SpanTracer::ThreadRing>
    SpanTracer::t_ring_;

SpanTracer &
SpanTracer::instance()
{
    static SpanTracer tracer;
    return tracer;
}

void
SpanTracer::enable(std::size_t ring_capacity)
{
    DFAULT_ASSERT(ring_capacity > 0, "span ring capacity must be > 0");
    std::lock_guard<std::mutex> lock(mutex_);
    // Discard prior state: rings re-register lazily at their next
    // record under the fresh epoch and capacity.
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        ring->ring.clear();
        ring->next = 0;
        ring->dropped = 0;
        ring->open.clear();
        ring->adoptedParent = 0;
    }
    capacity_.store(ring_capacity, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now();
    nextId_.store(1, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void
SpanTracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t
SpanTracer::newId()
{
    return nextId_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
SpanTracer::nowNs() const
{
    if (epoch_ == std::chrono::steady_clock::time_point{})
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

SpanTracer::ThreadRing &
SpanTracer::localRing()
{
    if (!t_ring_) {
        auto ring = std::make_shared<ThreadRing>();
        std::lock_guard<std::mutex> lock(mutex_);
        ring->tid = static_cast<std::uint32_t>(rings_.size());
        rings_.push_back(ring);
        t_ring_ = std::move(ring);
    }
    return *t_ring_;
}

void
SpanTracer::push(ThreadRing &ring, TraceEntry entry)
{
    const std::size_t capacity =
        capacity_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(ring.mutex);
    if (ring.ring.size() < capacity) {
        ring.ring.push_back(std::move(entry));
        ring.next = ring.ring.size() % capacity;
        return;
    }
    // Full: overwrite the oldest entry so the newest spans survive.
    ring.ring[ring.next] = std::move(entry);
    ring.next = (ring.next + 1) % capacity;
    ++ring.dropped;
}

std::uint64_t
SpanTracer::beginSpan(std::string_view name, std::string_view path)
{
    if (!enabled())
        return 0;
    ThreadRing &ring = localRing();
    OpenSpan span;
    span.id = newId();
    span.parent = ring.open.empty() ? ring.adoptedParent
                                    : ring.open.back().id;
    span.startNs = nowNs();
    span.name = name;
    span.path = path;
    const std::uint64_t id = span.id;
    {
        std::lock_guard<std::mutex> lock(ring.mutex);
        ring.open.push_back(std::move(span));
    }
    return id;
}

void
SpanTracer::endSpan(std::uint64_t id)
{
    if (id == 0)
        return;
    ThreadRing &ring = localRing();
    OpenSpan span;
    {
        std::lock_guard<std::mutex> lock(ring.mutex);
        DFAULT_ASSERT(!ring.open.empty() && ring.open.back().id == id,
                      "span end does not match the innermost open span");
        span = std::move(ring.open.back());
        ring.open.pop_back();
    }
    if (span.exported)
        return; // drain() already finalized this span
    TraceEntry entry;
    entry.kind = TraceKind::Span;
    entry.tid = ring.tid;
    entry.id = span.id;
    entry.parent = span.parent;
    entry.startNs = span.startNs;
    entry.endNs = nowNs();
    entry.name = std::move(span.name);
    entry.path = std::move(span.path);
    entry.detail = std::move(span.detail);
    push(ring, std::move(entry));
}

void
SpanTracer::annotateCurrent(std::string_view detail)
{
    if (!enabled() || !t_ring_)
        return;
    std::lock_guard<std::mutex> lock(t_ring_->mutex);
    if (!t_ring_->open.empty())
        t_ring_->open.back().detail = detail;
}

void
SpanTracer::flowEvent(TraceKind kind, std::uint64_t flow_id,
                      std::string_view path)
{
    if (!enabled())
        return;
    DFAULT_ASSERT(kind == TraceKind::FlowBegin ||
                      kind == TraceKind::FlowEnd,
                  "flowEvent takes FlowBegin or FlowEnd");
    ThreadRing &ring = localRing();
    TraceEntry entry;
    entry.kind = kind;
    entry.tid = ring.tid;
    entry.id = flow_id;
    entry.startNs = nowNs();
    entry.path = path;
    push(ring, std::move(entry));
}

void
SpanTracer::sampleCounters(const Registry &registry)
{
    if (!enabled())
        return;
    ThreadRing &ring = localRing();
    const std::uint64_t now = nowNs();
    for (const std::string &name : registry.names()) {
        if (registry.kindOf(name) != StatKind::Counter)
            continue;
        TraceEntry entry;
        entry.kind = TraceKind::CounterSample;
        entry.tid = ring.tid;
        entry.startNs = now;
        entry.name = name;
        entry.value = registry.value(name);
        push(ring, std::move(entry));
    }
}

std::uint64_t
SpanTracer::currentSpan()
{
    if (!t_ring_)
        return 0;
    std::lock_guard<std::mutex> lock(t_ring_->mutex);
    return t_ring_->open.empty() ? t_ring_->adoptedParent
                                : t_ring_->open.back().id;
}

std::vector<TraceEntry>
SpanTracer::drain()
{
    std::vector<std::shared_ptr<ThreadRing>> rings;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rings = rings_;
    }
    const std::uint64_t now = nowNs();
    std::vector<TraceEntry> out;
    for (const auto &ring : rings) {
        std::lock_guard<std::mutex> lock(ring->mutex);
        const std::size_t n = ring->ring.size();
        if (n > 0) {
            // Oldest first: the overwrite cursor points at the oldest
            // entry once the ring has wrapped.
            const std::size_t first = ring->next % n;
            for (std::size_t k = 0; k < n; ++k)
                out.push_back(ring->ring[(first + k) % n]);
        }
        // Finalize half-open spans at the drain timestamp; mark them
        // exported so the eventual real end is dropped, not recorded
        // as a duplicate.
        for (OpenSpan &span : ring->open) {
            if (span.exported)
                continue;
            span.exported = true;
            TraceEntry entry;
            entry.kind = TraceKind::Span;
            entry.tid = ring->tid;
            entry.id = span.id;
            entry.parent = span.parent;
            entry.startNs = span.startNs;
            entry.endNs = now;
            entry.name = span.name;
            entry.path = span.path;
            entry.detail = span.detail;
            out.push_back(std::move(entry));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEntry &a, const TraceEntry &b) {
                         return a.startNs < b.startNs;
                     });
    return out;
}

std::uint64_t
SpanTracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        total += ring->dropped;
    }
    return total;
}

std::uint64_t
SpanTracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        for (const TraceEntry &entry : ring->ring)
            if (entry.kind == TraceKind::Span)
                ++total;
    }
    return total;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view path)
    : id_(SpanTracer::instance().beginSpan(
          name, path.empty() ? name : path))
{
}

ScopedSpan::~ScopedSpan()
{
    SpanTracer::instance().endSpan(id_);
}

SpanAdoption::SpanAdoption(std::uint64_t parent_span)
{
    if (!SpanTracer::instance().enabled())
        return;
    auto &ring = SpanTracer::instance().localRing();
    std::lock_guard<std::mutex> lock(ring.mutex);
    saved_ = ring.adoptedParent;
    ring.adoptedParent = parent_span;
    active_ = true;
}

SpanAdoption::~SpanAdoption()
{
    if (!active_)
        return;
    auto &ring = SpanTracer::instance().localRing();
    std::lock_guard<std::mutex> lock(ring.mutex);
    ring.adoptedParent = saved_;
}

} // namespace dfault::obs
