#include "obs/stats.hh"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"
#include "fi/durable.hh"
#include "obs/json.hh"

namespace dfault::obs {

namespace {

bool
validStatName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool prev_dot = false;
    for (const char c : name) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

} // namespace

std::string
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Gauge:
        return "gauge";
      case StatKind::Distribution:
        return "distribution";
      case StatKind::Formula:
        return "formula";
      case StatKind::Histogram:
        return "histogram";
    }
    DFAULT_PANIC("unreachable stat kind");
}

Distribution::Distribution(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    DFAULT_ASSERT(hi > lo, "distribution range must be non-empty");
    DFAULT_ASSERT(buckets > 0, "distribution needs at least one bucket");
    buckets_.assign(static_cast<std::size_t>(buckets), 0);
}

void
Distribution::record(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        const auto idx = static_cast<std::size_t>(
            (x - lo_) / (hi_ - lo_) *
            static_cast<double>(buckets_.size()));
        ++buckets_[std::min(idx, buckets_.size() - 1)];
    }
}

std::uint64_t
Distribution::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Distribution::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Distribution::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::minSeen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
Distribution::maxSeen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

std::uint64_t
Distribution::bucket(int i) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    DFAULT_ASSERT(i >= 0 && i < static_cast<int>(buckets_.size()),
                  "distribution bucket index out of range");
    return buckets_[static_cast<std::size_t>(i)];
}

std::uint64_t
Distribution::underflow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return underflow_;
}

std::uint64_t
Distribution::overflow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overflow_;
}

DistributionSnapshot
Distribution::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    DistributionSnapshot snap;
    snap.lo = lo_;
    snap.hi = hi_;
    snap.buckets = buckets_;
    snap.underflow = underflow_;
    snap.overflow = overflow_;
    snap.count = count_;
    snap.sum = sum_;
    snap.min = count_ > 0 ? min_ : 0.0;
    snap.max = count_ > 0 ? max_ : 0.0;
    return snap;
}

void
Distribution::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buckets_.assign(buckets_.size(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Registry::Entry &
Registry::findOrCreate(const std::string &name, StatKind kind,
                       const std::string &description)
{
    if (!validStatName(name))
        DFAULT_PANIC("invalid stat name '", name,
                     "': want dotted [A-Za-z0-9_] segments");
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != kind)
            DFAULT_PANIC("stat '", name, "' already registered as a ",
                         statKindName(it->second.kind),
                         ", requested as a ", statKindName(kind));
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    entry.description = description;
    return entries_.emplace(name, std::move(entry)).first->second;
}

Counter &
Registry::counter(const std::string &name, const std::string &description)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = findOrCreate(name, StatKind::Counter, description);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &description)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = findOrCreate(name, StatKind::Gauge, description);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Distribution &
Registry::distribution(const std::string &name, double lo, double hi,
                       int buckets, const std::string &description)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = findOrCreate(name, StatKind::Distribution, description);
    if (!e.distribution)
        e.distribution = std::make_unique<Distribution>(lo, hi, buckets);
    return *e.distribution;
}

Formula &
Registry::formula(const std::string &name, std::function<double()> fn,
                  const std::string &description)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = findOrCreate(name, StatKind::Formula, description);
    if (!e.formula)
        e.formula = std::make_unique<Formula>(std::move(fn));
    return *e.formula;
}

Histogram &
Registry::histogram(const std::string &name,
                    const std::string &description)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = findOrCreate(name, StatKind::Histogram, description);
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>();
    return *e.histogram;
}

bool
Registry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) > 0;
}

StatKind
Registry::kindOf(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end())
        DFAULT_PANIC("unknown stat '", name, "'");
    return it->second.kind;
}

std::size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &kv : entries_)
        out.push_back(kv.first);
    return out;
}

double
Registry::value(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end())
        DFAULT_PANIC("unknown stat '", name, "'");
    const Entry &e = it->second;
    switch (e.kind) {
      case StatKind::Counter:
        return static_cast<double>(e.counter->value());
      case StatKind::Gauge:
        return e.gauge->value();
      case StatKind::Distribution:
        return e.distribution->mean();
      case StatKind::Formula:
        return e.formula->value();
      case StatKind::Histogram:
        return e.histogram->snapshot().mean();
    }
    DFAULT_PANIC("unreachable stat kind");
}

std::vector<StatSample>
Registry::sample() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StatSample> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_) {
        StatSample s;
        s.name = name;
        s.kind = e.kind;
        s.description = e.description;
        switch (e.kind) {
          case StatKind::Counter:
            s.value = static_cast<double>(e.counter->value());
            break;
          case StatKind::Gauge:
            s.value = e.gauge->value();
            break;
          case StatKind::Distribution:
            s.dist = e.distribution->snapshot();
            s.value = s.dist->count > 0
                          ? s.dist->sum /
                                static_cast<double>(s.dist->count)
                          : 0.0;
            break;
          case StatKind::Formula:
            s.value = e.formula->value();
            break;
          case StatKind::Histogram:
            s.hist = e.histogram->snapshot();
            s.value = s.hist->mean();
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : entries_) {
        Entry &e = kv.second;
        switch (e.kind) {
          case StatKind::Counter:
            e.counter->reset();
            break;
          case StatKind::Gauge:
            e.gauge->reset();
            break;
          case StatKind::Distribution:
            e.distribution->reset();
            break;
          case StatKind::Formula:
            break; // derived; re-evaluates from its inputs
          case StatKind::Histogram:
            e.histogram->reset();
            break;
        }
    }
}

void
Registry::dumpText(std::FILE *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &kv : entries_) {
        const std::string &name = kv.first;
        const Entry &e = kv.second;
        const char *desc = e.description.c_str();
        switch (e.kind) {
          case StatKind::Counter:
            std::fprintf(out, "%-44s %20llu  # %s\n", name.c_str(),
                         static_cast<unsigned long long>(
                             e.counter->value()),
                         desc);
            break;
          case StatKind::Gauge:
            std::fprintf(out, "%-44s %20.6g  # %s\n", name.c_str(),
                         e.gauge->value(), desc);
            break;
          case StatKind::Formula:
            std::fprintf(out, "%-44s %20.6g  # %s\n", name.c_str(),
                         e.formula->value(), desc);
            break;
          case StatKind::Distribution: {
            const Distribution &d = *e.distribution;
            std::fprintf(out, "%-44s %20llu  # %s (count)\n",
                         (name + ".count").c_str(),
                         static_cast<unsigned long long>(d.count()),
                         desc);
            if (d.count() == 0)
                break;
            std::fprintf(out, "%-44s %20.6g  # mean\n",
                         (name + ".mean").c_str(), d.mean());
            std::fprintf(out, "%-44s %20.6g  # min\n",
                         (name + ".min").c_str(), d.minSeen());
            std::fprintf(out, "%-44s %20.6g  # max\n",
                         (name + ".max").c_str(), d.maxSeen());
            const double width =
                (d.hi() - d.lo()) / d.bucketCount();
            for (int i = 0; i < d.bucketCount(); ++i) {
                if (d.bucket(i) == 0)
                    continue;
                std::fprintf(out,
                             "%-44s %20llu  # [%g, %g)\n",
                             (name + ".bucket." + std::to_string(i))
                                 .c_str(),
                             static_cast<unsigned long long>(
                                 d.bucket(i)),
                             d.lo() + i * width,
                             d.lo() + (i + 1) * width);
            }
            if (d.underflow() > 0)
                std::fprintf(out, "%-44s %20llu  # < %g\n",
                             (name + ".underflow").c_str(),
                             static_cast<unsigned long long>(
                                 d.underflow()),
                             d.lo());
            if (d.overflow() > 0)
                std::fprintf(out, "%-44s %20llu  # >= %g\n",
                             (name + ".overflow").c_str(),
                             static_cast<unsigned long long>(
                                 d.overflow()),
                             d.hi());
            break;
          }
          case StatKind::Histogram: {
            const HistogramSnapshot snap = e.histogram->snapshot();
            std::fprintf(out, "%-44s %20llu  # %s (count)\n",
                         (name + ".count").c_str(),
                         static_cast<unsigned long long>(snap.count),
                         desc);
            if (snap.count == 0)
                break;
            std::fprintf(out, "%-44s %20.6g  # mean\n",
                         (name + ".mean").c_str(), snap.mean());
            std::fprintf(out, "%-44s %20.6g  # min\n",
                         (name + ".min").c_str(), snap.min);
            std::fprintf(out, "%-44s %20.6g  # p50\n",
                         (name + ".p50").c_str(), snap.p50());
            std::fprintf(out, "%-44s %20.6g  # p90\n",
                         (name + ".p90").c_str(), snap.p90());
            std::fprintf(out, "%-44s %20.6g  # p99\n",
                         (name + ".p99").c_str(), snap.p99());
            std::fprintf(out, "%-44s %20.6g  # p999\n",
                         (name + ".p999").c_str(), snap.p999());
            std::fprintf(out, "%-44s %20.6g  # max\n",
                         (name + ".max").c_str(), snap.max);
            break;
          }
        }
    }
}

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter root;
    for (const auto &kv : entries_) {
        const Entry &e = kv.second;
        switch (e.kind) {
          case StatKind::Counter:
            root.field(kv.first, e.counter->value());
            break;
          case StatKind::Gauge:
            root.field(kv.first, e.gauge->value());
            break;
          case StatKind::Formula:
            root.field(kv.first, e.formula->value());
            break;
          case StatKind::Distribution: {
            const Distribution &d = *e.distribution;
            JsonWriter sub;
            sub.field("count", d.count());
            if (d.count() > 0) {
                sub.field("mean", d.mean());
                sub.field("min", d.minSeen());
                sub.field("max", d.maxSeen());
            }
            sub.field("lo", d.lo());
            sub.field("hi", d.hi());
            std::string buckets = "[";
            for (int i = 0; i < d.bucketCount(); ++i) {
                if (i > 0)
                    buckets += ',';
                buckets += std::to_string(d.bucket(i));
            }
            buckets += ']';
            sub.fieldRaw("buckets", buckets);
            sub.field("underflow", d.underflow());
            sub.field("overflow", d.overflow());
            root.fieldRaw(kv.first, sub.str());
            break;
          }
          case StatKind::Histogram: {
            // The "kind" marker lets consumers (tools/stats_diff, CI
            // validators) recognize and exclude histograms without a
            // name convention: quantiles of latency streams are
            // host-dependent by nature.
            const HistogramSnapshot snap = e.histogram->snapshot();
            JsonWriter sub;
            sub.field("kind", "histogram");
            sub.field("count", snap.count);
            sub.field("zeros", snap.zeros);
            if (snap.count > 0) {
                sub.field("mean", snap.mean());
                sub.field("min", snap.min);
                sub.field("max", snap.max);
                sub.field("p50", snap.p50());
                sub.field("p90", snap.p90());
                sub.field("p99", snap.p99());
                sub.field("p999", snap.p999());
            }
            std::string buckets = "[";
            bool first = true;
            for (const auto &[index, n] : snap.buckets) {
                if (!first)
                    buckets += ',';
                first = false;
                buckets += "[" + std::to_string(index) + "," +
                           std::to_string(n) + "]";
            }
            buckets += ']';
            sub.fieldRaw("buckets", buckets);
            root.fieldRaw(kv.first, sub.str());
            break;
          }
        }
    }
    return root.str();
}

bool
Registry::writeFile(const std::string &path) const
{
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    std::string body;
    if (json) {
        body = toJson();
        body += '\n';
    } else {
        // Render the text dump into memory so the file write goes
        // through the atomic temp-fsync-rename path like every other
        // artifact.
        char *buf = nullptr;
        std::size_t len = 0;
        std::FILE *mem = open_memstream(&buf, &len);
        if (mem == nullptr)
            return false;
        dumpText(mem);
        std::fclose(mem);
        body.assign(buf, len);
        std::free(buf);
    }
    return fi::atomicWriteFile(path, body);
}

} // namespace dfault::obs
