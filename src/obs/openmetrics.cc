#include "obs/openmetrics.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "obs/histogram.hh"
#include "obs/json.hh"

namespace dfault::obs {

namespace {

/** OpenMetrics float text: finite values reuse the shortest
 *  round-tripping decimal (jsonNumber), non-finite use the spec's
 *  spellings instead of JSON's null. */
std::string
omNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return jsonNumber(v);
}

/** HELP text escaping: backslash and line feed only, per spec. */
std::string
omHelpEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
appendMeta(std::string &out, const std::string &name,
           const std::string &type, const std::string &description)
{
    if (!description.empty())
        out += "# HELP " + name + " " + omHelpEscape(description) + "\n";
    out += "# TYPE " + name + " " + type + "\n";
}

void
appendGauge(std::string &out, const std::string &name,
            const std::string &description, double value)
{
    appendMeta(out, name, "gauge", description);
    out += name + " " + omNumber(value) + "\n";
}

/** One cumulative `le` bucket line. */
void
appendBucket(std::string &out, const std::string &name,
             const std::string &le, std::uint64_t cumulative)
{
    out += name + "_bucket{le=\"" + le + "\"} " +
           std::to_string(cumulative) + "\n";
}

void
appendDistribution(std::string &out, const std::string &name,
                   const std::string &description,
                   const DistributionSnapshot &snap)
{
    appendMeta(out, name, "histogram", description);
    const double width =
        (snap.hi - snap.lo) / static_cast<double>(snap.buckets.size());
    std::uint64_t cumulative = snap.underflow;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
        cumulative += snap.buckets[i];
        const double edge = snap.lo + width * static_cast<double>(i + 1);
        appendBucket(out, name, omNumber(edge), cumulative);
    }
    // One lock produced the snapshot, so count is exactly the buckets
    // plus both overflow bins and the +Inf line can use it directly.
    appendBucket(out, name, "+Inf", snap.count);
    out += name + "_count " + std::to_string(snap.count) + "\n";
    out += name + "_sum " + omNumber(snap.sum) + "\n";
}

void
appendHistogram(std::string &out, const std::string &name,
                const std::string &description,
                const HistogramSnapshot &snap)
{
    appendMeta(out, name, "histogram", description);
    // Shards bump their count before their bucket, so a snapshot taken
    // mid-record can hold count > zeros + sum(buckets). Derive the
    // exposed total from the buckets themselves: the document then
    // always satisfies the lint invariant +Inf == _count == last
    // cumulative value, at the cost of trailing count() by at most the
    // few records in flight.
    std::uint64_t derived = snap.zeros;
    std::uint64_t cumulative = snap.zeros;
    for (const auto &[index, n] : snap.buckets)
        derived += n;
    for (const auto &[index, n] : snap.buckets) {
        cumulative += n;
        const double edge =
            index + 1 < Histogram::kBucketCount
                ? Histogram::bucketLowerEdge(index + 1)
                : std::ldexp(1.0, Histogram::kMinExp2);
        appendBucket(out, name, omNumber(edge), cumulative);
    }
    appendBucket(out, name, "+Inf", derived);
    out += name + "_count " + std::to_string(derived) + "\n";
    out += name + "_sum " + omNumber(snap.sum) + "\n";
    // A family can be a histogram or a summary, not both; expose the
    // streaming quantiles/extrema as sibling gauge families.
    appendGauge(out, name + "_p50", "", snap.p50());
    appendGauge(out, name + "_p90", "", snap.p90());
    appendGauge(out, name + "_p99", "", snap.p99());
    appendGauge(out, name + "_p999", "", snap.p999());
    appendGauge(out, name + "_min", "", snap.min);
    appendGauge(out, name + "_max", "", snap.max);
}

} // namespace

std::string
openMetricsName(const std::string &stat_name)
{
    std::string out;
    out.reserve(stat_name.size() + 1);
    for (const char c : stat_name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')
            out += c;
        else
            out += '_';
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

std::string
openMetricsText(const std::vector<StatSample> &samples)
{
    std::string out;
    out.reserve(256 + samples.size() * 96);
    for (const StatSample &s : samples) {
        const std::string name = openMetricsName(s.name);
        switch (s.kind) {
          case StatKind::Counter:
            appendMeta(out, name, "counter", s.description);
            out += name + "_total " +
                   std::to_string(
                       static_cast<std::uint64_t>(s.value)) +
                   "\n";
            break;
          case StatKind::Gauge:
          case StatKind::Formula:
            appendGauge(out, name, s.description, s.value);
            break;
          case StatKind::Distribution:
            if (s.dist)
                appendDistribution(out, name, s.description, *s.dist);
            break;
          case StatKind::Histogram:
            if (s.hist)
                appendHistogram(out, name, s.description, *s.hist);
            break;
        }
    }
    out += "# EOF\n";
    return out;
}

std::string
openMetricsText(const Registry *registry)
{
    const Registry &reg =
        registry != nullptr ? *registry : Registry::instance();
    return openMetricsText(reg.sample());
}

MetricsServer::~MetricsServer()
{
    stop();
}

bool
MetricsServer::start(int port, Renderer renderer)
{
    if (running())
        return true;
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        DFAULT_WARN("metrics server: socket() failed: ",
                    std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        DFAULT_WARN("metrics server: cannot listen on 127.0.0.1:", port,
                    ": ", std::strerror(errno),
                    " (metrics file exposition still active)");
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = static_cast<int>(ntohs(bound.sin_port));
    else
        port_ = port;

    renderer_ = std::move(renderer);
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsServer::stop()
{
    if (!running())
        return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    port_ = -1;
}

void
MetricsServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0)
            continue; // timeout or EINTR: re-check the stop flag
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // Drain (and ignore) the request line; every path serves the
        // same document.
        char req[1024];
        (void)::recv(fd, req, sizeof(req), 0);

        const std::string body = renderer_ ? renderer_() : "# EOF\n";
        std::string response =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: application/openmetrics-text; "
            "version=1.0.0; charset=utf-8\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n"
            "\r\n" +
            body;
        const char *p = response.data();
        std::size_t remaining = response.size();
        // Count before sending: a client that has read the full
        // response must observe the request as served.
        requests_.fetch_add(1, std::memory_order_relaxed);
        while (remaining > 0) {
            const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            p += n;
            remaining -= static_cast<std::size_t>(n);
        }
        ::close(fd);
    }
}

} // namespace dfault::obs
