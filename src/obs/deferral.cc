#include "obs/deferral.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace dfault::obs {

namespace {

thread_local StatsDeferral *t_active = nullptr;

const char *
opKindTag(StatOp::Kind kind)
{
    switch (kind) {
      case StatOp::Kind::CounterInc:
        return "c";
      case StatOp::Kind::GaugeAdd:
        return "ga";
      case StatOp::Kind::GaugeSet:
        return "gs";
      case StatOp::Kind::DistRecord:
        return "d";
      case StatOp::Kind::HistRecord:
        return "h";
    }
    DFAULT_PANIC("unreachable stat-op kind");
}

bool
opKindFromTag(const std::string &tag, StatOp::Kind &out)
{
    if (tag == "c")
        out = StatOp::Kind::CounterInc;
    else if (tag == "ga")
        out = StatOp::Kind::GaugeAdd;
    else if (tag == "gs")
        out = StatOp::Kind::GaugeSet;
    else if (tag == "d")
        out = StatOp::Kind::DistRecord;
    else if (tag == "h")
        out = StatOp::Kind::HistRecord;
    else
        return false;
    return true;
}

/** A jsonNumber() null (non-finite input) parses back as NaN. */
double
numberOrNan(const JsonValue &v)
{
    return v.kind == JsonValue::Kind::Number
               ? v.number
               : std::numeric_limits<double>::quiet_NaN();
}

} // namespace

void
deferralCapture(StatOp op)
{
    t_active->ops_.push_back(std::move(op));
}

StatsDeferral::StatsDeferral() : prev_(t_active)
{
    t_active = this;
}

StatsDeferral::~StatsDeferral()
{
    t_active = prev_;
}

std::vector<StatOp>
StatsDeferral::take()
{
    std::vector<StatOp> out;
    out.swap(ops_);
    return out;
}

bool
StatsDeferral::active()
{
    return t_active != nullptr;
}

void
publishCounter(const std::string &name, const std::string &description,
               std::uint64_t n)
{
    if (t_active != nullptr) {
        deferralCapture({StatOp::Kind::CounterInc, name, description,
                         static_cast<double>(n), 0.0, 0.0, 0});
        return;
    }
    Registry::instance().counter(name, description).inc(n);
}

void
publishGaugeAdd(const std::string &name, const std::string &description,
                double delta)
{
    if (t_active != nullptr) {
        deferralCapture({StatOp::Kind::GaugeAdd, name, description, delta,
                         0.0, 0.0, 0});
        return;
    }
    Registry::instance().gauge(name, description).add(delta);
}

void
publishGaugeSet(const std::string &name, const std::string &description,
                double value)
{
    if (t_active != nullptr) {
        deferralCapture({StatOp::Kind::GaugeSet, name, description, value,
                         0.0, 0.0, 0});
        return;
    }
    Registry::instance().gauge(name, description).set(value);
}

void
publishDistribution(const std::string &name, double lo, double hi,
                    int buckets, const std::string &description,
                    double sample)
{
    if (t_active != nullptr) {
        deferralCapture({StatOp::Kind::DistRecord, name, description,
                         sample, lo, hi, buckets});
        return;
    }
    Registry::instance()
        .distribution(name, lo, hi, buckets, description)
        .record(sample);
}

void
publishHistogram(const std::string &name, const std::string &description,
                 double sample)
{
    if (t_active != nullptr) {
        deferralCapture({StatOp::Kind::HistRecord, name, description,
                         sample, 0.0, 0.0, 0});
        return;
    }
    Registry::instance().histogram(name, description).record(sample);
}

void
applyStatOps(const std::vector<StatOp> &ops, Registry *registry)
{
    Registry &reg = registry != nullptr ? *registry : Registry::instance();
    for (const StatOp &op : ops) {
        switch (op.kind) {
          case StatOp::Kind::CounterInc:
            reg.counter(op.name, op.description)
                .inc(static_cast<std::uint64_t>(op.value));
            break;
          case StatOp::Kind::GaugeAdd:
            reg.gauge(op.name, op.description).add(op.value);
            break;
          case StatOp::Kind::GaugeSet:
            reg.gauge(op.name, op.description).set(op.value);
            break;
          case StatOp::Kind::DistRecord:
            reg.distribution(op.name, op.lo, op.hi, op.buckets,
                             op.description)
                .record(op.value);
            break;
          case StatOp::Kind::HistRecord:
            reg.histogram(op.name, op.description).record(op.value);
            break;
        }
    }
}

std::string
statOpsJson(const std::vector<StatOp> &ops)
{
    std::string out = "[";
    for (const StatOp &op : ops) {
        if (out.size() > 1)
            out += ',';
        JsonWriter w;
        w.field("k", opKindTag(op.kind));
        w.field("n", op.name);
        if (!op.description.empty())
            w.field("desc", op.description);
        w.field("v", op.value);
        if (op.kind == StatOp::Kind::DistRecord) {
            w.field("lo", op.lo);
            w.field("hi", op.hi);
            w.field("b", op.buckets);
        }
        out += w.str();
    }
    out += ']';
    return out;
}

bool
statOpsFromJson(const JsonValue &array, std::vector<StatOp> &out,
                std::string *error)
{
    const auto fail = [error](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (!array.isArray())
        return fail("stat ops: expected a JSON array");
    std::vector<StatOp> parsed;
    parsed.reserve(array.array.size());
    for (const JsonValue &item : array.array) {
        if (!item.isObject())
            return fail("stat ops: expected objects in the array");
        const JsonValue *tag = item.find("k");
        const JsonValue *name = item.find("n");
        const JsonValue *value = item.find("v");
        if (tag == nullptr || tag->kind != JsonValue::Kind::String ||
            name == nullptr || name->kind != JsonValue::Kind::String ||
            value == nullptr)
            return fail("stat ops: entry missing k/n/v");
        StatOp op;
        if (!opKindFromTag(tag->string, op.kind))
            return fail("stat ops: unknown kind tag '" + tag->string + "'");
        op.name = name->string;
        if (const JsonValue *desc = item.find("desc");
            desc != nullptr && desc->kind == JsonValue::Kind::String)
            op.description = desc->string;
        op.value = numberOrNan(*value);
        if (op.kind == StatOp::Kind::DistRecord) {
            const JsonValue *lo = item.find("lo");
            const JsonValue *hi = item.find("hi");
            const JsonValue *buckets = item.find("b");
            if (lo == nullptr || hi == nullptr || buckets == nullptr ||
                buckets->kind != JsonValue::Kind::Number)
                return fail("stat ops: distribution entry missing lo/hi/b");
            op.lo = numberOrNan(*lo);
            op.hi = numberOrNan(*hi);
            op.buckets = static_cast<int>(buckets->number);
        }
        parsed.push_back(std::move(op));
    }
    out = std::move(parsed);
    return true;
}

} // namespace dfault::obs
