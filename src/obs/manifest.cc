#include "obs/manifest.hh"

#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/rng.hh"
#include "fi/durable.hh"
#include "obs/json.hh"
#include "obs/stats.hh"

#ifndef __has_feature
#define __has_feature(x) 0 // gcc spells the sanitizers __SANITIZE_*__
#endif

namespace dfault::obs {

namespace {

std::string
isoTimestamp()
{
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace

bool
digestExcludes(const std::string &name)
{
    // time.* is pure wall clock; par.* depends on scheduling (steal
    // counts, per-phase seconds); fi.* records fault-injection and
    // recovery activity (retries, quarantines, checkpoint restores),
    // which varies between a faulted and a clean run of the same
    // config; perf.* hardware-counter readings and alloc.* heap
    // attribution are host- and build-dependent (and zero where
    // perf_event_open is unavailable); anything measured in seconds is
    // host-speed-dependent wherever it lives; last_* gauges are
    // last-writer-wins snapshots, so their final value depends on
    // which task published last. ts.* / slo.* are the telemetry
    // sampler's own bookkeeping and live.* are the immediate
    // (non-deferred) campaign progress stats — all three exist only
    // for streaming consumers and depend on sampling cadence, so the
    // digest must not see them (the sampler-on/off digest-stability
    // tests enforce this). serve.live.* (queue depth, breaker-state
    // gauges) is the prediction service's moment-in-time state — the
    // deterministic serve.* counters next to it stay digested.
    // journal.* records write-ahead-journal activity (segments
    // written, restores, quarantines), which differs between a
    // killed-and-resumed run and a clean one just like fi.* does.
    // Histogram-kind stats are excluded by kind in statsDigest()
    // regardless of name.
    return name.starts_with("time.") || name.starts_with("par.") ||
           name.starts_with("fi.") || name.starts_with("perf.") ||
           name.starts_with("alloc.") || name.starts_with("ts.") ||
           name.starts_with("slo.") || name.starts_with("live.") ||
           name.starts_with("serve.live.") ||
           name.starts_with("journal.") ||
           name.find("seconds") != std::string::npos ||
           name.find("last_") != std::string::npos;
}

std::uint64_t
statsDigest(const Registry *registry)
{
    const Registry &reg =
        registry != nullptr ? *registry : Registry::instance();
    std::uint64_t hash = kFnvOffset64;
    for (const std::string &name : reg.names()) {
        if (digestExcludes(name))
            continue;
        // Latency histograms vary run to run; even over deterministic
        // values their mean is a shard-partition-dependent float sum.
        if (reg.kindOf(name) == StatKind::Histogram)
            continue;
        hash = fnv1a64(name, hash);
        hash = fnv1a64("=", hash);
        // 9 significant digits: enough to catch any real drift, few
        // enough that float-sum reassociation across thread counts
        // (last-ulp differences in distribution means and accumulated
        // gauges) cannot perturb the digest.
        char value[40];
        std::snprintf(value, sizeof(value), "%.9g", reg.value(name));
        hash = fnv1a64(value, hash);
        hash = fnv1a64("\n", hash);
    }
    return hash;
}

std::string
buildInfoJson()
{
    JsonWriter w;
#if defined(__VERSION__)
    w.field("compiler", __VERSION__);
#else
    w.field("compiler", "unknown");
#endif
    w.field("cxx_standard",
            static_cast<std::int64_t>(__cplusplus));
#if defined(NDEBUG)
    w.field("assertions", false);
#else
    w.field("assertions", true);
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
    w.field("asan", true);
#else
    w.field("asan", false);
#endif
#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
    w.field("tsan", true);
#else
    w.field("tsan", false);
#endif
    return w.str();
}

std::string
manifestJson(const ManifestInfo &info, const Registry *registry)
{
    const Registry &reg =
        registry != nullptr ? *registry : Registry::instance();

    JsonWriter w;
    w.field("manifest_version", 1);
    w.field("tool", info.tool);
    w.field("command", info.command);
    w.field("created_utc", isoTimestamp());
    w.field("threads", info.threads);

    JsonWriter config;
    for (const auto &kv : info.config)
        config.field(kv.first, kv.second);
    w.fieldRaw("config", config.str());

    w.fieldRaw("build", buildInfoJson());
    w.field("wall_seconds", info.wallSeconds);
    if (info.interrupted) {
        w.field("interrupted", true);
        if (!info.interruptReason.empty())
            w.field("interrupt_reason", info.interruptReason);
    }
    if (info.resumedFromTick >= 0)
        w.field("resumed_from_tick", info.resumedFromTick);
    if (!info.statsPath.empty())
        w.field("stats_out", info.statsPath);
    if (!info.tracePath.empty())
        w.field("trace_events", info.tracePath);
    if (!info.metricsPath.empty()) {
        JsonWriter telemetry;
        telemetry.field("metrics_out", info.metricsPath);
        telemetry.field("sampler_ticks", info.samplerTicks);
        w.fieldRaw("telemetry", telemetry.str());
    }
    if (!info.sloSummaryJson.empty())
        w.fieldRaw("slo", info.sloSummaryJson);

    JsonWriter stats;
    stats.field("total", static_cast<std::uint64_t>(reg.size()));
    std::uint64_t digested = 0;
    for (const std::string &name : reg.names())
        if (!digestExcludes(name) &&
            reg.kindOf(name) != StatKind::Histogram)
            ++digested;
    stats.field("digested", digested);
    char digest[24];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(
                      statsDigest(&reg)));
    stats.field("digest", digest);
    w.fieldRaw("stats", stats.str());
    return w.str();
}

bool
writeManifestFile(const std::string &path, const ManifestInfo &info,
                  const Registry *registry)
{
    return fi::atomicWriteFile(path, manifestJson(info, registry) + "\n");
}

} // namespace dfault::obs
