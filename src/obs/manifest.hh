/**
 * @file
 * Run provenance manifests: every figure- or stats-producing run
 * writes one JSON document from which the run can be reproduced and
 * its artifacts traced back — the command line, resolved config keys,
 * thread count, build flavor (compiler, sanitizers, NDEBUG), wall
 * time, and a digest of the *deterministic* slice of the stats
 * registry.
 *
 * The digest deliberately excludes scheduling- and host-dependent
 * stats (the time.* phase gauges, the whole par.* subtree — steal
 * counts depend on scheduling — anything holding seconds, and last_*
 * last-writer-wins gauges), and hashes values at 9 significant
 * digits so float-sum reassociation across thread counts cannot
 * perturb it: two runs with the same seed and config produce the
 * same digest at any thread count, so a figure whose manifest digest
 * matches a later re-run is known to come from identical
 * measurements.
 */

#ifndef DFAULT_OBS_MANIFEST_HH
#define DFAULT_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dfault::obs {

class Registry;

/** What the caller knows about the run; the rest is collected here. */
struct ManifestInfo
{
    std::string tool;    ///< binary name, e.g. "dfault" / "fig07_wer_sweep"
    std::string command; ///< the full command line, space-joined
    std::vector<std::pair<std::string, std::string>> config;
    int threads = 1;
    std::string statsPath; ///< "" when no stats dump was written
    std::string tracePath; ///< "" when no trace export was written
    double wallSeconds = 0.0;
    /** Run ended early but drained gracefully (SIGINT/SIGTERM,
     *  deadline): artifacts are valid but partial, and a resume run
     *  (same checkpoint dir) completes the work. */
    bool interrupted = false;
    std::string interruptReason; ///< e.g. "received SIGTERM" ("" = none)
    /** Tick the serving phase was restored to from its write-ahead
     *  journal (serve/journal.hh); -1 (the default) = not a resumed
     *  run, and the field is omitted from the manifest. */
    std::int64_t resumedFromTick = -1;
    /** Telemetry sampler summary ("" when the sampler never ran). */
    std::string metricsPath;     ///< final OpenMetrics snapshot path
    std::uint64_t samplerTicks = 0;
    /** SLO verdict array from SloTracker::summaryJson() ("" = no
     *  targets configured; omitted from the manifest). */
    std::string sloSummaryJson;
};

/**
 * FNV-1a 64-bit digest over "name=value" lines of the deterministic
 * stats (see file comment). Defaults to the global registry.
 */
std::uint64_t statsDigest(const Registry *registry = nullptr);

/** True when @p name is excluded from the digest as nondeterministic. */
bool digestExcludes(const std::string &name);

/** Compiler / sanitizer / assertion flavor as a JSON object. */
std::string buildInfoJson();

/** The complete manifest document for @p info. */
std::string manifestJson(const ManifestInfo &info,
                         const Registry *registry = nullptr);

/**
 * Write manifestJson() to @p path. Returns false when the file cannot
 * be created.
 */
bool writeManifestFile(const std::string &path, const ManifestInfo &info,
                       const Registry *registry = nullptr);

} // namespace dfault::obs

#endif // DFAULT_OBS_MANIFEST_HH
