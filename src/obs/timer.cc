#include "obs/timer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/span.hh"

namespace dfault::obs {

namespace {

thread_local std::vector<std::string> t_phaseStack;

std::string
joinStack()
{
    std::string path;
    for (const std::string &segment : t_phaseStack) {
        if (!path.empty())
            path += '.';
        path += segment;
    }
    return path;
}

} // namespace

ScopedTimer::ScopedTimer(std::string_view phase, Registry *registry)
    : registry_(registry != nullptr ? *registry : Registry::instance()),
      start_(std::chrono::steady_clock::now())
{
    DFAULT_ASSERT(!phase.empty(), "timer phase name must be non-empty");
    DFAULT_ASSERT(phase.find('.') == std::string_view::npos,
                  "timer phase must be a single path segment: ", phase);
    // Build the dotted path before touching the stack: if any of the
    // allocations below throw, the constructor never completes, the
    // destructor never runs, and the stack must be exactly as we
    // found it.
    path_ = joinStack();
    if (!path_.empty())
        path_ += '.';
    path_ += phase;
    t_phaseStack.emplace_back(phase);
    try {
        spanId_ = SpanTracer::instance().beginSpan(phase, path_);
    } catch (...) {
        t_phaseStack.pop_back();
        throw;
    }
    if (AllocTracker::enabled()) {
        allocActive_ = true;
        allocStart_ = AllocTracker::threadTotals();
    }
    // Sample counters last so the phase's delta excludes this timer's
    // own setup.
    if (PerfCounters::phaseProfiling()) {
        perfActive_ = true;
        perfStart_ = PerfCounters::threadInstance().sample();
    }
}

ScopedTimer::~ScopedTimer()
{
    const double seconds = elapsed();
    // Counter end-sample first: everything below is timer teardown,
    // not phase work.
    PerfSample perfEnd;
    if (perfActive_)
        perfEnd = PerfCounters::threadInstance().sample();
    SpanTracer::instance().endSpan(spanId_);
    DFAULT_ASSERT(!t_phaseStack.empty() && path_.ends_with(
                      t_phaseStack.back()),
                  "phase stack corrupted: timers must strictly nest");
    t_phaseStack.pop_back();
    registry_.gauge("time." + path_ + ".seconds",
                    "wall-clock seconds inside phase " + path_)
        .add(seconds);
    registry_.counter("time." + path_ + ".calls",
                      "entries into phase " + path_)
        .inc();
    if (perfActive_)
        publishPerfDelta(registry_, "perf.phase." + path_,
                         perfEnd.deltaSince(perfStart_));
    if (allocActive_) {
        const AllocTracker::Totals end = AllocTracker::threadTotals();
        registry_
            .gauge("alloc.phase." + path_ + ".bytes",
                   "heap bytes allocated inside phase " + path_)
            .add(static_cast<double>(end.bytes - allocStart_.bytes));
        registry_
            .counter("alloc.phase." + path_ + ".allocs",
                     "heap allocations inside phase " + path_)
            .inc(end.allocs - allocStart_.allocs);
    }
    // A top-level phase boundary: snapshot the counters this run has
    // accumulated so the trace gets a counter-track data point.
    if (t_phaseStack.empty() && SpanTracer::instance().enabled())
        SpanTracer::instance().sampleCounters(registry_);
}

double
ScopedTimer::elapsed() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::string
ScopedTimer::currentPath()
{
    return joinStack();
}

PhaseAdoption::PhaseAdoption(const std::string &path)
{
    // Parse into a local vector first: if a segment allocation throws
    // the half-built constructor never runs its destructor, so the
    // thread's stack must not have been moved away yet (it used to
    // be, leaving the stack corrupted on bad_alloc).
    std::vector<std::string> segments;
    std::size_t begin = 0;
    while (begin <= path.size() && !path.empty()) {
        const std::size_t dot = path.find('.', begin);
        const std::size_t end = dot == std::string::npos ? path.size()
                                                         : dot;
        DFAULT_ASSERT(end > begin,
                      "phase path has an empty segment: ", path);
        segments.emplace_back(path.substr(begin, end - begin));
        if (dot == std::string::npos)
            break;
        begin = dot + 1;
    }
    saved_ = std::move(t_phaseStack);
    t_phaseStack = std::move(segments);
}

PhaseAdoption::~PhaseAdoption()
{
    t_phaseStack = std::move(saved_);
}

std::vector<PhaseTime>
phaseTimes(const Registry *registry)
{
    const Registry &reg =
        registry != nullptr ? *registry : Registry::instance();
    constexpr std::string_view prefix = "time.";
    constexpr std::string_view suffix = ".seconds";
    std::vector<PhaseTime> out;
    for (const std::string &name : reg.names()) {
        if (!name.starts_with(prefix) || !name.ends_with(suffix))
            continue;
        PhaseTime pt;
        pt.path = name.substr(prefix.size(), name.size() - prefix.size() -
                                                 suffix.size());
        pt.seconds = reg.value(name);
        const std::string calls = std::string(prefix) + pt.path + ".calls";
        pt.calls = reg.has(calls)
                       ? static_cast<std::uint64_t>(reg.value(calls))
                       : 0;
        out.push_back(std::move(pt));
    }
    // Registry order sorts "<p>.seconds" after "<p>.<child>.seconds";
    // sorting by path puts parents before their children.
    std::sort(out.begin(), out.end(),
              [](const PhaseTime &a, const PhaseTime &b) {
                  return a.path < b.path;
              });
    return out;
}

} // namespace dfault::obs
