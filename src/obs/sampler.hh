/**
 * @file
 * Background telemetry sampler: registry snapshots on a cadence.
 *
 * Every other producer in the observability layer reports at run exit;
 * the sampler turns the registry into a *stream*. A dedicated thread —
 * built on the pool-watchdog pattern: condition-variable wait with a
 * stop predicate, joined on stop() — wakes every --sample-interval
 * and, per tick:
 *
 *  1. takes one consistent Registry::sample();
 *  2. pushes each stat's scalar into the per-stat TimeSeries rings,
 *     keyed by the tick counter (never wall clock — see
 *     obs/timeseries.hh for the determinism contract);
 *  3. evaluates the configured SLO targets against the new window,
 *     bumping the slo.* breach counters and emitting one `slo_breach`
 *     JSONL event per violation through the EventSink (whose
 *     single-fwrite-under-lock discipline makes concurrent emission
 *     from this thread safe);
 *  4. atomically rewrites --metrics-out with the OpenMetrics rendering
 *     of the snapshot, so external scrapers always read a complete
 *     document.
 *
 * stop() joins the thread and then runs one final tick inline, so even
 * a run cut short by SIGTERM (the shutdown path drains through the
 * normal epilogue) leaves a fresh, lint-clean metrics snapshot and a
 * final SLO verdict behind. The sampler's own bookkeeping lands under
 * ts.* / slo.*, which — like live.* — are digest-excluded and ignored
 * by stats_diff, so sampling never perturbs provenance digests.
 *
 * An optional MetricsServer (--metrics-port) serves live scrapes on
 * localhost; it renders directly from the registry on its own thread
 * and does not touch the sampler's single-threaded state.
 */

#ifndef DFAULT_OBS_SAMPLER_HH
#define DFAULT_OBS_SAMPLER_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/openmetrics.hh"
#include "obs/slo.hh"
#include "obs/timeseries.hh"

namespace dfault::obs {

/**
 * Parse a duration like "100ms", "2s", "500us", "250000ns" or a plain
 * number of seconds ("0.1"). Returns seconds, or nullopt on malformed
 * input.
 */
std::optional<double> parseDurationSeconds(const std::string &text);

struct SamplerOptions
{
    /** Tick cadence; also the per-tick seconds assumed by rate SLOs. */
    double intervalSeconds = 0.1;
    /** OpenMetrics snapshot path; empty disables file exposition. */
    std::string metricsOutPath;
    /** Localhost scrape port (0 = ephemeral); negative disables. */
    int metricsPort = -1;
    std::vector<SloTarget> sloTargets;
    /** Retained samples per series. */
    std::size_t ringCapacity = 512;
    /** Ticks a rate/min/max SLO aggregation looks back over. */
    std::size_t sloWindow = 32;
    /** Registry to sample; nullptr = the process-wide instance. */
    const Registry *registry = nullptr;
};

/** See file comment. */
class Sampler
{
  public:
    /** The process-wide sampler wired up by the CLI / bench harness. */
    static Sampler &instance();

    Sampler() = default;
    ~Sampler();
    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Start the sampling thread (no-op returning false when already
     *  running). Fatal on a non-positive interval. */
    bool start(const SamplerOptions &opts);

    /** Join the thread, run the final flush tick, stop the scrape
     *  server. Idempotent; keeps the collected series, SLO verdicts
     *  and tick count readable afterwards. */
    void stop();

    bool running() const { return thread_.joinable(); }

    std::uint64_t ticks() const { return ticks_; }

    /** Single-threaded state: read only while stopped (tests) or from
     *  the sampler thread itself. */
    const TimeSeriesStore &store() const { return store_; }
    const SloTracker &slo() const { return slo_; }

    /** True when start() was given at least one SLO target (stays true
     *  after stop, for the manifest). */
    bool sloConfigured() const { return !slo_.empty(); }

    /** Manifest payload: the SLO verdict array, or "" when no targets
     *  were configured. */
    std::string sloSummaryJson() const;

    const MetricsServer &server() const { return server_; }

  private:
    void loop();
    void tick();

    SamplerOptions opts_;
    TimeSeriesStore store_{512};
    SloTracker slo_;
    MetricsServer server_;
    std::uint64_t ticks_ = 0;

    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopRequested_ = false;
    std::thread thread_;
};

} // namespace dfault::obs

#endif // DFAULT_OBS_SAMPLER_HH
