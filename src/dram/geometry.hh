/**
 * @file
 * DRAM organization and physical address mapping.
 *
 * Mirrors the paper's platform: an X-Gene2-like SoC with four DDR3 memory
 * controller units (MCUs / channels), one DIMM per MCU, two ranks per
 * DIMM, and 9 x8 chips per rank (8 data + 1 ECC). The default geometry is
 * capacity-scaled (see DESIGN.md §4): rows per bank and words per row are
 * configurable so the simulated address space stays tractable while the
 * row/bank/rank/channel structure — which drives per-DIMM/rank error
 * attribution and interference adjacency — matches the real organization.
 */

#ifndef DFAULT_DRAM_GEOMETRY_HH
#define DFAULT_DRAM_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace dfault::dram {

/** Identity of one error-accounting unit: a (DIMM, rank) pair. */
struct DeviceId
{
    int dimm = 0;
    int rank = 0;

    bool operator==(const DeviceId &) const = default;

    /** Human-readable label matching the paper's figures. */
    std::string label() const;
};

/** Coordinates of a 64-bit word within the DRAM system. */
struct WordCoord
{
    int channel = 0; ///< MCU index; equals the DIMM index (1 DIMM/MCU).
    int rank = 0;
    int bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0; ///< 64-bit-word index within the row.

    bool operator==(const WordCoord &) const = default;

    DeviceId device() const { return DeviceId{channel, rank}; }
};

/**
 * Static description of the DRAM system organization plus the physical
 * address map. All counts must be powers of two.
 */
class Geometry
{
  public:
    struct Params
    {
        int channels = 4;        ///< MCUs; one DIMM each.
        int ranksPerDimm = 2;
        int banksPerRank = 8;
        std::uint32_t rowsPerBank = 4096;   ///< scaled (real: 64K)
        std::uint32_t wordsPerRow = 128;    ///< 64-bit words (real: 1K)
        int dataChipsPerRank = 8;           ///< x8 chips holding data
        int eccChipsPerRank = 1;            ///< x8 chip holding SECDED bits
    };

    Geometry();
    explicit Geometry(const Params &params);

    const Params &params() const { return params_; }

    /** Number of error-accounting devices (DIMM × rank pairs). */
    int deviceCount() const { return params_.channels * params_.ranksPerDimm; }

    /** Flat index of a device in [0, deviceCount()). */
    int deviceIndex(const DeviceId &dev) const;

    /** Inverse of deviceIndex(). */
    DeviceId deviceAt(int index) const;

    /** Total data capacity in bytes across all devices. */
    std::uint64_t capacityBytes() const;

    /** Total 64-bit data words across all devices. */
    std::uint64_t capacityWords() const;

    /** Data words held by one (DIMM, rank) device. */
    std::uint64_t wordsPerDevice() const;

    /** Rows per device (across all banks). */
    std::uint64_t rowsPerDevice() const;

    /**
     * Map a byte address to its word coordinate.
     *
     * Layout from the LSB: 3 bits byte-in-word, word-in-row (column),
     * channel, rank, bank, row. Interleaving the channel above the low
     * column bits spreads consecutive cache lines across MCUs, as the
     * X-Gene2 firmware does.
     *
     * @pre addr < capacityBytes()
     */
    WordCoord decode(Addr addr) const;

    /** Inverse of decode(); byte address of the word's first byte. */
    Addr encode(const WordCoord &coord) const;

    /**
     * Flat index of a row within its device in [0, rowsPerDevice());
     * rows of the same bank are contiguous.
     */
    std::uint64_t rowIndex(const WordCoord &coord) const;

    /** Flat index of a word within its device. */
    std::uint64_t wordIndexInDevice(const WordCoord &coord) const;

  private:
    Params params_;
    int channelBits_;
    int rankBits_;
    int bankBits_;
    int rowBits_;
    int columnBits_;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_GEOMETRY_HH
