#include "dram/device.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace dfault::dram {

DramDevice::DramDevice(const DeviceId &id, const Variation &variation)
    : id_(id), variation_(variation)
{
    DFAULT_ASSERT(variation_.retentionScale > 0.0,
                  "retention scale must be positive");
    DFAULT_ASSERT(variation_.trueCellFraction >= 0.0 &&
                  variation_.trueCellFraction <= 1.0,
                  "true-cell fraction must be a probability");
}

std::uint32_t
DramDevice::physicalRow(std::uint32_t logical_row) const
{
    return logical_row ^ variation_.rowScrambleKey;
}

bool
DramDevice::rowIsTrueCell(std::uint32_t physical_row) const
{
    // Hash the row index into [0,1) and compare against the device's
    // true-cell fraction; deterministic per row, "striped" per vendor.
    std::uint64_t s = hashCombine(physical_row,
                                  variation_.rowScrambleKey | 1u);
    const double u = static_cast<double>(s >> 11) * 0x1.0p-53;
    return u < variation_.trueCellFraction;
}

double
DramDevice::chipScaleForBit(int bit) const
{
    DFAULT_ASSERT(bit >= 0 && bit < 72, "bit index out of codeword range");
    if (variation_.chipScales.empty())
        return 1.0;
    // x8 chips: bits 0..7 -> chip 0, ..., 56..63 -> chip 7, checks -> 8.
    const auto chip = static_cast<std::size_t>(bit / 8);
    return variation_.chipScales[chip % variation_.chipScales.size()];
}

DeviceFactory::DeviceFactory(const Geometry &geometry)
    : DeviceFactory(geometry, Params{})
{
}

DeviceFactory::DeviceFactory(const Geometry &geometry, const Params &params)
    : geometry_(geometry), params_(params)
{
    if (params_.retentionScaleSigma < 0.0)
        DFAULT_FATAL("device factory: retentionScaleSigma must be >= 0");
    if (params_.trueCellMin < 0.0 || params_.trueCellMax > 1.0 ||
        params_.trueCellMin > params_.trueCellMax) {
        DFAULT_FATAL("device factory: bad true-cell fraction range");
    }
}

DramDevice
DeviceFactory::build(const DeviceId &id) const
{
    // Deterministic per-device stream: identical hardware for a given
    // master seed regardless of construction order.
    Rng rng(hashCombine(params_.masterSeed,
                        static_cast<std::uint64_t>(
                            geometry_.deviceIndex(id)) + 1));

    DramDevice::Variation var;
    var.retentionScale =
        rng.lognormal(0.0, params_.retentionScaleSigma);
    var.trueCellFraction =
        rng.uniform(params_.trueCellMin, params_.trueCellMax);
    var.rowScrambleKey = static_cast<std::uint32_t>(
        rng.next() & (geometry_.params().rowsPerBank - 1));

    const int chips = geometry_.params().dataChipsPerRank +
                      geometry_.params().eccChipsPerRank;
    var.chipScales.reserve(chips);
    for (int c = 0; c < chips; ++c)
        var.chipScales.push_back(rng.lognormal(0.0, params_.chipScaleSigma));

    return DramDevice(id, var);
}

std::vector<DramDevice>
DeviceFactory::buildAll() const
{
    std::vector<DramDevice> devices;
    devices.reserve(geometry_.deviceCount());
    for (int i = 0; i < geometry_.deviceCount(); ++i)
        devices.push_back(build(geometry_.deviceAt(i)));
    return devices;
}

} // namespace dfault::dram
