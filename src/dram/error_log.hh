/**
 * @file
 * Memory-error event log.
 *
 * Plays the role of the X-Gene2 SLIMpro management core: every error the
 * ECC logic corrects or detects is reported with its physical location
 * (DIMM, rank, bank, row, column). WER is defined over *unique* 64-bit
 * word locations (paper Eq. 2), so the log deduplicates CE locations.
 */

#ifndef DFAULT_DRAM_ERROR_LOG_HH
#define DFAULT_DRAM_ERROR_LOG_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dram/ecc.hh"
#include "dram/geometry.hh"

namespace dfault::dram {

/** Classification of a logged memory error (paper Table I). */
enum class ErrorType
{
    CE,  ///< single-bit, corrected
    UE,  ///< multi-bit, detected but uncorrected (crashes the system)
    SDC, ///< >2 bits, miscorrected / undetected
};

/** One reported memory error. */
struct ErrorRecord
{
    DeviceId device;
    int bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0;
    ErrorType type = ErrorType::CE;
    std::uint64_t epoch = 0; ///< Characterization epoch of first report.
    int bitsFlipped = 1;
};

/**
 * Append-only error log with per-device aggregation.
 *
 * The unique-CE-word sets are keyed by the word's flat index within its
 * device, so repeated reports of the same failing word (the common case
 * over a 2-hour run) count once toward WER.
 */
class ErrorLog
{
  public:
    explicit ErrorLog(const Geometry &geometry);

    /**
     * Report an error. CE reports for an already-known word location are
     * deduplicated (not appended). Returns true if the record was new.
     */
    bool report(const ErrorRecord &record);

    /** All retained records in report order. */
    const std::vector<ErrorRecord> &records() const { return records_; }

    /** Unique CE word locations on one device. */
    std::uint64_t uniqueCeWords(const DeviceId &dev) const;

    /** Unique CE word locations across all devices. */
    std::uint64_t uniqueCeWordsTotal() const;

    /** Number of UE records on one device. */
    std::uint64_t ueCount(const DeviceId &dev) const;

    /** Number of UE records across all devices. */
    std::uint64_t ueCountTotal() const;

    /** Number of SDC records across all devices. */
    std::uint64_t sdcCountTotal() const;

    /** Forget everything (start of a new experiment). */
    void clear();

  private:
    const Geometry &geometry_;
    std::vector<ErrorRecord> records_;
    std::vector<std::unordered_set<std::uint64_t>> ceWordsPerDevice_;
    std::vector<std::uint64_t> uePerDevice_;
    std::uint64_t sdcTotal_ = 0;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_ERROR_LOG_HH
