/**
 * @file
 * Variable Retention Time (VRT) model.
 *
 * Restle'92 observed that a cell's leakage toggles between discrete
 * states over time. For error accounting this means the set of cells
 * that actually leak during a given window changes from epoch to epoch
 * and run to run: the unique-location WER grows over a 2-hour run and
 * converges (paper Fig 2/4), and the UE outcome varies across the 10
 * repeats of each experiment (Fig 9).
 *
 * Each *potentially weak* cell (one whose low-retention state falls
 * below the effective refresh interval) is modelled as a two-state
 * Markov chain over epochs: in the "active" state the cell leaks, in
 * the "quiet" state it does not.
 */

#ifndef DFAULT_DRAM_VRT_HH
#define DFAULT_DRAM_VRT_HH

#include <cstdint>

namespace dfault::dram {

/** Two-state Markov VRT model, evaluated at epoch granularity. */
class VrtModel
{
  public:
    struct Params
    {
        /** P(quiet -> active) per epoch. */
        double onRate = 0.020;
        /** P(active -> quiet) per epoch. */
        double offRate = 0.620;
    };

    VrtModel();
    explicit VrtModel(const Params &params);

    const Params &params() const { return params_; }

    /** Stationary probability that a weak cell is active in an epoch. */
    double stationaryActiveFraction() const;

    /**
     * Probability that a weak cell has been active in at least one of
     * the first @p epochs epochs (starting from the stationary
     * distribution). This is the unique-location discovery curve that
     * shapes WER(t).
     */
    double everActiveProbability(std::uint64_t epochs) const;

    /**
     * Probability that a cell first becomes active exactly in epoch
     * @p epoch (1-based): the increment of everActiveProbability().
     */
    double firstActivationProbability(std::uint64_t epoch) const;

  private:
    Params params_;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_VRT_HH
