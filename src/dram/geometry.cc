#include "dram/geometry.hh"

#include <bit>

#include "common/logging.hh"

namespace dfault::dram {

namespace {

int
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || !std::has_single_bit(v))
        DFAULT_FATAL("geometry: ", what, " must be a power of two, got ", v);
    return std::countr_zero(v);
}

} // namespace

std::string
DeviceId::label() const
{
    return "DIMM" + std::to_string(dimm) + "/rank" + std::to_string(rank);
}

Geometry::Geometry() : Geometry(Params{}) {}

Geometry::Geometry(const Params &params)
    : params_(params),
      channelBits_(log2Exact(params.channels, "channels")),
      rankBits_(log2Exact(params.ranksPerDimm, "ranksPerDimm")),
      bankBits_(log2Exact(params.banksPerRank, "banksPerRank")),
      rowBits_(log2Exact(params.rowsPerBank, "rowsPerBank")),
      columnBits_(log2Exact(params.wordsPerRow, "wordsPerRow"))
{
    if (params.dataChipsPerRank <= 0 || params.eccChipsPerRank <= 0)
        DFAULT_FATAL("geometry: chip counts must be positive");
}

int
Geometry::deviceIndex(const DeviceId &dev) const
{
    DFAULT_ASSERT(dev.dimm >= 0 && dev.dimm < params_.channels,
                  "device dimm out of range");
    DFAULT_ASSERT(dev.rank >= 0 && dev.rank < params_.ranksPerDimm,
                  "device rank out of range");
    return dev.dimm * params_.ranksPerDimm + dev.rank;
}

DeviceId
Geometry::deviceAt(int index) const
{
    DFAULT_ASSERT(index >= 0 && index < deviceCount(),
                  "device index out of range");
    return DeviceId{index / params_.ranksPerDimm,
                    index % params_.ranksPerDimm};
}

std::uint64_t
Geometry::wordsPerDevice() const
{
    return static_cast<std::uint64_t>(params_.banksPerRank) *
           params_.rowsPerBank * params_.wordsPerRow;
}

std::uint64_t
Geometry::rowsPerDevice() const
{
    return static_cast<std::uint64_t>(params_.banksPerRank) *
           params_.rowsPerBank;
}

std::uint64_t
Geometry::capacityWords() const
{
    return wordsPerDevice() * static_cast<std::uint64_t>(deviceCount());
}

std::uint64_t
Geometry::capacityBytes() const
{
    return capacityWords() * units::bytesPerWord;
}

WordCoord
Geometry::decode(Addr addr) const
{
    DFAULT_ASSERT(addr < capacityBytes(), "address beyond DRAM capacity");

    std::uint64_t bits = addr >> 3; // strip byte-in-word

    WordCoord coord;
    coord.column = static_cast<std::uint32_t>(
        bits & ((1ULL << columnBits_) - 1));
    bits >>= columnBits_;
    coord.channel = static_cast<int>(bits & ((1ULL << channelBits_) - 1));
    bits >>= channelBits_;
    coord.rank = static_cast<int>(bits & ((1ULL << rankBits_) - 1));
    bits >>= rankBits_;
    coord.bank = static_cast<int>(bits & ((1ULL << bankBits_) - 1));
    bits >>= bankBits_;
    coord.row = static_cast<std::uint32_t>(bits & ((1ULL << rowBits_) - 1));
    return coord;
}

Addr
Geometry::encode(const WordCoord &coord) const
{
    std::uint64_t bits = coord.row;
    bits = (bits << bankBits_) | static_cast<std::uint64_t>(coord.bank);
    bits = (bits << rankBits_) | static_cast<std::uint64_t>(coord.rank);
    bits = (bits << channelBits_) | static_cast<std::uint64_t>(coord.channel);
    bits = (bits << columnBits_) | coord.column;
    return bits << 3;
}

std::uint64_t
Geometry::rowIndex(const WordCoord &coord) const
{
    return static_cast<std::uint64_t>(coord.bank) * params_.rowsPerBank +
           coord.row;
}

std::uint64_t
Geometry::wordIndexInDevice(const WordCoord &coord) const
{
    return rowIndex(coord) * params_.wordsPerRow + coord.column;
}

} // namespace dfault::dram
