/**
 * @file
 * Cell-to-cell interference (disturbance) model.
 *
 * Frequent activations of a row drain charge from cells in the two
 * physically adjacent rows (Kim'14, the row-hammer effect). Under a
 * relaxed refresh period this turns near-threshold cells — cells whose
 * retention narrowly exceeds the effective refresh interval — into
 * failing cells. The paper identifies the memory access rate as the
 * program feature most strongly correlated with WER (Fig 10, rs ~ 0.57)
 * and attributes it to this mechanism.
 *
 * The model widens the weak-cell retention threshold: a victim cell
 * fails if tau < t_eff * (1 + delta) where delta grows with the number
 * of aggressor activations the neighbouring rows receive within one
 * refresh window.
 */

#ifndef DFAULT_DRAM_INTERFERENCE_HH
#define DFAULT_DRAM_INTERFERENCE_HH

#include "common/units.hh"

namespace dfault::dram {

/** Activation-count driven disturbance model; see file comment. */
class InterferenceModel
{
  public:
    struct Params
    {
        /**
         * Threshold widening at the reference aggressor intensity:
         * delta = strength * log1p(acts_per_window / refActivations).
         */
        double strength = 1.2;
        /** Aggressor activations per refresh window that give log1p(1). */
        double refActivations = 150.0;
        /** Upper bound on delta (charge loss saturates). */
        double maxDelta = 1.5;
    };

    InterferenceModel();
    explicit InterferenceModel(const Params &params);

    const Params &params() const { return params_; }

    /**
     * Threshold-widening factor delta for a victim row whose neighbours
     * receive @p aggressor_rate activations per second under refresh
     * period @p trefp. Returns 0 when there is no aggressor activity.
     */
    double thresholdWidening(double aggressor_rate, Seconds trefp) const;

  private:
    Params params_;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_INTERFERENCE_HH
