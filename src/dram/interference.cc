#include "dram/interference.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dfault::dram {

InterferenceModel::InterferenceModel() : InterferenceModel(Params{}) {}

InterferenceModel::InterferenceModel(const Params &params) : params_(params)
{
    if (params_.strength < 0.0)
        DFAULT_FATAL("interference: strength must be non-negative");
    if (params_.refActivations <= 0.0)
        DFAULT_FATAL("interference: refActivations must be positive");
}

double
InterferenceModel::thresholdWidening(double aggressor_rate,
                                     Seconds trefp) const
{
    if (aggressor_rate <= 0.0 || trefp <= 0.0)
        return 0.0;
    // Disturbance accumulates between refreshes; a refresh restores the
    // victim's charge, so the window of exposure is one refresh period.
    const double acts_per_window = aggressor_rate * trefp;
    const double delta =
        params_.strength * std::log1p(acts_per_window /
                                      params_.refActivations);
    return std::min(delta, params_.maxDelta);
}

} // namespace dfault::dram
