/**
 * @file
 * DRAM cell retention-time model.
 *
 * Cell retention times follow a lognormal distribution (Hamamoto'98,
 * Liu'13): the vast majority of cells retain charge for hundreds of
 * seconds, with a weak tail that leaks within single-digit seconds. The
 * model exposes the tail probability P(tau < t_eff) — the probability
 * that a cell leaks before its next (explicit or implicit) refresh —
 * under a given operating point:
 *
 *   tau(T, V) = tau_ref * exp(-alpha * (T - 50C)) * (V / 1.5V)^gammaV
 *
 * i.e. retention decreases exponentially with temperature and mildly
 * with supply voltage, matching the paper's observations that a 5% VDD
 * reduction alone is close to error-free while the temperature raise
 * from 50C to 70C inflates error rates by orders of magnitude.
 */

#ifndef DFAULT_DRAM_RETENTION_HH
#define DFAULT_DRAM_RETENTION_HH

#include "common/units.hh"
#include "dram/operating_point.hh"

namespace dfault::dram {

/**
 * Analytic retention-tail model; see the file comment for the physics.
 *
 * Default parameters are calibrated (tests/dram/test_retention.cpp and
 * the integration calibration test) so that the nominal operating point
 * is error-free and the relaxed points reproduce the paper's WER band
 * of 1e-10 .. 1e-5 per 64-bit word.
 */
class RetentionModel
{
  public:
    struct Params
    {
        /** Mean of ln(tau/seconds) at 50 C, 1.5 V. */
        double mu = 7.2;
        /** Standard deviation of ln(tau). */
        double sigma = 1.05;
        /** Exponential temperature acceleration per degree C. */
        double tempAlpha = 0.075;
        /** Retention sensitivity to VDD: tau scales as (V/Vnom)^gammaV. */
        double vddGamma = 2.0;
        /** Reference temperature for mu (degrees C). */
        Celsius refTemperature = 50.0;
    };

    RetentionModel();
    explicit RetentionModel(const Params &params);

    const Params &params() const { return params_; }

    /**
     * Multiplicative factor applied to every cell's retention time under
     * the given operating point (1.0 at 50 C / 1.5 V).
     */
    double tauScale(const OperatingPoint &op) const;

    /**
     * Probability that a cell's retention time is below @p t_eff under
     * operating point @p op for a device whose manufacturing variation
     * multiplies retention by @p device_scale.
     */
    double weakProbability(Seconds t_eff, const OperatingPoint &op,
                           double device_scale = 1.0) const;

    /**
     * Retention time (seconds) below which a fraction @p p of cells
     * fall, under @p op. Inverse of weakProbability in t_eff.
     */
    Seconds weakQuantile(double p, const OperatingPoint &op,
                         double device_scale = 1.0) const;

  private:
    Params params_;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_RETENTION_HH
