/**
 * @file
 * Per-device (DIMM/rank) manufacturing variation.
 *
 * DRAM reliability varies across DIMMs — and even across ranks of one
 * DIMM — because of process variation, true-/anti-cell organization,
 * address scrambling and faulty-cell remapping (paper §II-D; the study
 * measures a 188x WER spread across chips). Each DramDevice carries
 * deterministic, seed-derived variation parameters so that a campaign
 * re-run with the same master seed characterizes the same "hardware".
 */

#ifndef DFAULT_DRAM_DEVICE_HH
#define DFAULT_DRAM_DEVICE_HH

#include <cstdint>
#include <vector>

#include "dram/geometry.hh"

namespace dfault::dram {

/**
 * Variation parameters of one (DIMM, rank) error-accounting device.
 *
 * Construct through DeviceFactory so the spread across devices follows
 * the configured population statistics.
 */
class DramDevice
{
  public:
    struct Variation
    {
        /** Multiplies every cell's retention time (lognormal across devices). */
        double retentionScale = 1.0;
        /** Fraction of rows organized as true cells (leak 1 -> 0). */
        double trueCellFraction = 0.5;
        /** XOR key applied to logical row numbers (vendor scrambling). */
        std::uint32_t rowScrambleKey = 0;
        /** Per-data-chip retention scale (mild within-device variation). */
        std::vector<double> chipScales;
    };

    DramDevice(const DeviceId &id, const Variation &variation);

    const DeviceId &id() const { return id_; }
    const Variation &variation() const { return variation_; }

    double retentionScale() const { return variation_.retentionScale; }

    /**
     * Physical row index after vendor address scrambling. Scrambling
     * permutes rows within a bank, which decides which logical rows are
     * physically adjacent (and therefore interference victims).
     */
    std::uint32_t physicalRow(std::uint32_t logical_row) const;

    /** True if the given physical row uses true cells (leak to 0). */
    bool rowIsTrueCell(std::uint32_t physical_row) const;

    /** Retention scale of the chip that stores bit @p bit of a word. */
    double chipScaleForBit(int bit) const;

  private:
    DeviceId id_;
    Variation variation_;
};

/**
 * Builds the device population for a geometry from a master seed.
 *
 * The population statistics (spread of retention scales, etc.) are the
 * knobs that set the DIMM-to-DIMM WER spread (Fig 8).
 */
class DeviceFactory
{
  public:
    struct Params
    {
        /** Sigma of ln(retentionScale) across devices. */
        double retentionScaleSigma = 0.55;
        /** Uniform range of the true-cell fraction across devices. */
        double trueCellMin = 0.35;
        double trueCellMax = 0.65;
        /** Sigma of ln(chipScale) across chips within a device. */
        double chipScaleSigma = 0.10;
        /** Seed defining the identity of the simulated hardware. */
        std::uint64_t masterSeed = 0xd1a9;
    };

    explicit DeviceFactory(const Geometry &geometry);
    DeviceFactory(const Geometry &geometry, const Params &params);

    /** Construct the full population, one device per (DIMM, rank). */
    std::vector<DramDevice> buildAll() const;

    /** Construct a single device (deterministic in id + seed). */
    DramDevice build(const DeviceId &id) const;

  private:
    const Geometry &geometry_;
    Params params_;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_DEVICE_HH
