/**
 * @file
 * DDR3 auto-refresh scheduling arithmetic.
 *
 * DDR3 distributes the refresh of all rows over the refresh period as
 * 8192 AUTO REFRESH commands (one every tREFI = TREFP / 8192); each
 * command blocks the rank for tRFC. Relaxing TREFP therefore buys both
 * refresh *energy* (fewer commands) and *availability* (less time
 * blocked) — the two gains the paper's energy argument combines. This
 * helper provides the command-rate, availability and energy arithmetic
 * used by the power model's consumers and the energy bench.
 */

#ifndef DFAULT_DRAM_REFRESH_HH
#define DFAULT_DRAM_REFRESH_HH

#include "dram/operating_point.hh"

namespace dfault::dram {

/** See file comment. */
class RefreshScheduler
{
  public:
    struct Params
    {
        /** AUTO REFRESH commands per refresh period (DDR3: 8192). */
        int commandsPerPeriod = 8192;
        /** Refresh cycle time per command (4 Gb DDR3: ~260 ns). */
        Seconds trfc = 260e-9;
        /** Energy per AUTO REFRESH command per rank (nJ). */
        double commandNanojoules = 115.0;
    };

    RefreshScheduler();
    explicit RefreshScheduler(const Params &params);

    const Params &params() const { return params_; }

    /** Average interval between refresh commands (tREFI). */
    Seconds refreshInterval(const OperatingPoint &op) const;

    /** Refresh commands issued per second. */
    double commandRate(const OperatingPoint &op) const;

    /**
     * Fraction of time a rank is blocked by refresh (tRFC / tREFI);
     * the bandwidth/availability cost of refreshing.
     */
    double blockedFraction(const OperatingPoint &op) const;

    /** Average refresh power per rank in watts. */
    double refreshPower(const OperatingPoint &op) const;

    /**
     * Refresh commands a row-open interval of @p duration overlaps on
     * average (used to reason about refresh-induced latency jitter).
     */
    double commandsWithin(const OperatingPoint &op,
                          Seconds duration) const;

  private:
    Params params_;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_REFRESH_HH
