#include "dram/controller.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace dfault::dram {

double
RowActivity::meanIntervalCycles() const
{
    if (accesses < 2)
        return 0.0;
    return static_cast<double>(lastCycle - firstCycle) /
           static_cast<double>(accesses - 1);
}

int
RowActivity::touchedWords() const
{
    return std::popcount(wordMaskLo) + std::popcount(wordMaskHi);
}

void
RowActivity::touchColumn(std::uint32_t column)
{
    const std::uint32_t folded = column & 127u;
    if (folded < 64)
        wordMaskLo |= (1ULL << folded);
    else
        wordMaskHi |= (1ULL << (folded - 64));
}

Mcu::Mcu(const Geometry &geometry, int channel)
    : Mcu(geometry, channel, Params{})
{
}

Mcu::Mcu(const Geometry &geometry, int channel, const Params &params)
    : geometry_(geometry), channel_(channel), params_(params)
{
    DFAULT_ASSERT(channel >= 0 && channel < geometry.params().channels,
                  "MCU channel out of range");
    const auto &g = geometry_.params();
    openRow_.assign(static_cast<std::size_t>(g.ranksPerDimm) *
                        g.banksPerRank, -1);
    rows_.resize(g.ranksPerDimm);
    for (auto &rank_rows : rows_)
        rank_rows.resize(geometry_.rowsPerDevice());
}

Cycles
Mcu::access(const WordCoord &coord, bool is_write, Cycles cycle)
{
    DFAULT_ASSERT(coord.channel == channel_, "access routed to wrong MCU");

    const auto &g = geometry_.params();
    const std::size_t bank_slot =
        static_cast<std::size_t>(coord.rank) * g.banksPerRank + coord.bank;
    const auto row_id = static_cast<std::int64_t>(coord.row);

    // Channel contention: commands serialize on the channel's data bus.
    const Cycles start = std::max(cycle, busyUntil_);
    busyUntil_ = start + params_.burstCycles;
    Cycles latency = params_.queuePenalty + (start - cycle);
    const bool hit = openRow_[bank_slot] == row_id;

    RowActivity &row = rows_[coord.rank][geometry_.rowIndex(coord)];
    if (hit) {
        ++counters_.rowHits;
        latency += params_.rowHitLatency;
    } else {
        ++counters_.rowMisses;
        if (openRow_[bank_slot] >= 0)
            ++counters_.precharges;
        ++counters_.activations;
        ++row.activations;
        openRow_[bank_slot] = row_id;
        latency += params_.rowMissLatency;
    }

    if (is_write)
        ++counters_.writeCmds;
    else
        ++counters_.readCmds;

    if (row.accesses == 0) {
        row.firstCycle = cycle;
    } else if (cycle > row.lastCycle) {
        // Thread clocks are only loosely synchronized; count forward
        // gaps only.
        row.maxGapCycles = std::max(row.maxGapCycles,
                                    cycle - row.lastCycle);
    }
    row.lastCycle = std::max(row.lastCycle, cycle);
    ++row.accesses;
    // A CAS transfers the full 64 B line: all eight words of the line
    // hold application data and count as touched.
    const std::uint32_t line_base = coord.column & ~7u;
    for (std::uint32_t w = 0; w < 8; ++w)
        row.touchColumn(line_base + w);

    return latency;
}

const std::vector<RowActivity> &
Mcu::rowActivity(int rank) const
{
    DFAULT_ASSERT(rank >= 0 &&
                  rank < static_cast<int>(rows_.size()),
                  "rank out of range");
    return rows_[rank];
}

void
Mcu::reset()
{
    counters_ = McuCounters{};
    busyUntil_ = 0;
    std::fill(openRow_.begin(), openRow_.end(), -1);
    for (auto &rank_rows : rows_)
        std::fill(rank_rows.begin(), rank_rows.end(), RowActivity{});
}

} // namespace dfault::dram
