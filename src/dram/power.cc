#include "dram/power.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfault::dram {

PowerModel::PowerModel() : PowerModel(Params{}) {}

PowerModel::PowerModel(const Params &params) : params_(params)
{
    if (params_.backgroundWatts < 0.0 ||
        params_.refreshWattsNominal < 0.0 ||
        params_.activateNanojoules < 0.0 ||
        params_.burstNanojoules < 0.0) {
        DFAULT_FATAL("power model: constants must be non-negative");
    }
}

double
PowerModel::vddScale(const OperatingPoint &op) const
{
    return std::pow(op.vdd / kNominalVdd, params_.vddExponent);
}

PowerBreakdown
PowerModel::rankPower(const OperatingPoint &op, double activate_rate,
                      double command_rate) const
{
    op.validate();
    DFAULT_ASSERT(activate_rate >= 0.0 && command_rate >= 0.0,
                  "activity rates cannot be negative");

    const double v2 = vddScale(op);
    PowerBreakdown power;
    power.background = params_.backgroundWatts * v2;
    power.refresh = params_.refreshWattsNominal *
                    (kNominalTrefp / op.trefp) * v2;
    power.activate =
        params_.activateNanojoules * 1e-9 * activate_rate * v2;
    power.readWrite =
        params_.burstNanojoules * 1e-9 * command_rate * v2;
    return power;
}

double
PowerModel::refreshSavings(const OperatingPoint &op,
                           Seconds duration) const
{
    DFAULT_ASSERT(duration >= 0.0, "duration cannot be negative");
    const OperatingPoint nominal{kNominalTrefp, op.vdd, op.temperature};
    const double nominal_w =
        rankPower(nominal, 0.0, 0.0).refresh;
    const double relaxed_w = rankPower(op, 0.0, 0.0).refresh;
    return (nominal_w - relaxed_w) * duration;
}

} // namespace dfault::dram
