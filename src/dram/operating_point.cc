#include "dram/operating_point.hh"

#include <cstdio>

#include "common/logging.hh"

namespace dfault::dram {

std::string
OperatingPoint::label() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "TREFP=%.3fs VDD=%.3fV T=%.0fC",
                  trefp, vdd, temperature);
    return buf;
}

void
OperatingPoint::validate() const
{
    if (trefp <= 0.0)
        DFAULT_FATAL("operating point: TREFP must be positive, got ", trefp);
    if (vdd <= 0.0)
        DFAULT_FATAL("operating point: VDD must be positive, got ", vdd);
    if (vdd < 1.0 || vdd > 2.0)
        DFAULT_WARN("operating point: VDD ", vdd,
                    " V is outside the DDR3 plausible range");
    if (temperature < -40.0 || temperature > 125.0)
        DFAULT_FATAL("operating point: temperature ", temperature,
                     " C is outside the device range");
}

} // namespace dfault::dram
