#include "dram/operating_point.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace dfault::dram {

std::string
OperatingPoint::label() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "TREFP=%.3fs VDD=%.3fV T=%.0fC",
                  trefp, vdd, temperature);
    return buf;
}

void
OperatingPoint::validate() const
{
    // Non-finite values would silently poison the retention model
    // (every exp()/pow() of them is NaN), so they are rejected up
    // front with the offending field named.
    if (!std::isfinite(trefp))
        DFAULT_FATAL("operating point: TREFP (key trefp_s) is not a "
                     "finite number");
    if (!std::isfinite(vdd))
        DFAULT_FATAL("operating point: VDD (key vdd_v) is not a "
                     "finite number");
    if (!std::isfinite(temperature))
        DFAULT_FATAL("operating point: temperature (key temp_c) is not "
                     "a finite number");
    if (trefp <= 0.0)
        DFAULT_FATAL("operating point: TREFP must be positive, got ", trefp);
    if (trefp > 10.0)
        DFAULT_FATAL("operating point: TREFP ", trefp,
                     " s is beyond the modeled range (the paper sweeps "
                     "up to ", kMaxTrefp, " s)");
    if (vdd <= 0.0)
        DFAULT_FATAL("operating point: VDD must be positive, got ", vdd);
    if (vdd < 0.8 || vdd > 2.5)
        DFAULT_FATAL("operating point: VDD ", vdd,
                     " V is outside the modeled DDR3 range [0.8, 2.5]");
    if (vdd < 1.0 || vdd > 2.0)
        DFAULT_WARN("operating point: VDD ", vdd,
                    " V is outside the DDR3 plausible range");
    if (temperature < -40.0 || temperature > 125.0)
        DFAULT_FATAL("operating point: temperature ", temperature,
                     " C is outside the device range");
}

} // namespace dfault::dram
