/**
 * @file
 * DRAM power model.
 *
 * The paper's motivation for relaxing TREFP and VDD is energy: refresh
 * consumes a growing share of DRAM power as densities rise, and "the
 * maximum power gain is achieved when both TREFP and VDD are scaled"
 * (§V). This model computes per-device power from the standard
 * IDD-style decomposition used by DRAM datasheets:
 *
 *   P = P_background + P_refresh(TREFP) + P_activate(ACT rate)
 *     + P_rw(command rates)
 *
 * with the voltage-dependent terms scaling as (VDD/VDD_nom)^2. The
 * absolute constants follow DDR3 4Gb x8 datasheet magnitudes; the
 * trends (refresh inversely proportional to TREFP, quadratic VDD
 * scaling) are what the advisor and ablation studies rely on.
 */

#ifndef DFAULT_DRAM_POWER_HH
#define DFAULT_DRAM_POWER_HH

#include "dram/operating_point.hh"

namespace dfault::dram {

/** Power breakdown of one rank (9 x8 chips), in watts. */
struct PowerBreakdown
{
    double background = 0.0; ///< standby / leakage
    double refresh = 0.0;    ///< auto-refresh bursts
    double activate = 0.0;   ///< row activate/precharge energy
    double readWrite = 0.0;  ///< data-bus and I/O energy

    double total() const
    {
        return background + refresh + activate + readWrite;
    }
};

/** See file comment. */
class PowerModel
{
  public:
    struct Params
    {
        /** Standby power per rank at nominal VDD (W). */
        double backgroundWatts = 0.45;
        /**
         * Refresh power per rank at the nominal 64 ms TREFP (W); the
         * actual refresh power scales as kNominalTrefp / TREFP.
         */
        double refreshWattsNominal = 0.25;
        /** Energy per row activate+precharge pair (nJ). */
        double activateNanojoules = 18.0;
        /** Energy per 64 B read or write burst (nJ). */
        double burstNanojoules = 6.0;
        /** Exponent of the VDD dependence (CV^2-style -> 2). */
        double vddExponent = 2.0;
    };

    PowerModel();
    explicit PowerModel(const Params &params);

    const Params &params() const { return params_; }

    /**
     * Power of one rank under @p op with the given command activity.
     *
     * @param activate_rate row activations per second
     * @param command_rate read+write bursts per second
     */
    PowerBreakdown rankPower(const OperatingPoint &op,
                             double activate_rate,
                             double command_rate) const;

    /**
     * Refresh energy saved per rank over @p duration by operating at
     * @p op instead of the nominal 64 ms refresh period (joules).
     */
    double refreshSavings(const OperatingPoint &op,
                          Seconds duration) const;

  private:
    Params params_;

    double vddScale(const OperatingPoint &op) const;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_POWER_HH
