#include "dram/retention.hh"

#include <cmath>

#include "common/logging.hh"
#include "stats/distributions.hh"

namespace dfault::dram {

RetentionModel::RetentionModel() : RetentionModel(Params{}) {}

RetentionModel::RetentionModel(const Params &params) : params_(params)
{
    if (params_.sigma <= 0.0)
        DFAULT_FATAL("retention model: sigma must be positive");
    if (params_.tempAlpha < 0.0)
        DFAULT_FATAL("retention model: tempAlpha must be non-negative");
}

double
RetentionModel::tauScale(const OperatingPoint &op) const
{
    const double temp_factor =
        std::exp(-params_.tempAlpha * (op.temperature -
                                       params_.refTemperature));
    const double vdd_factor = std::pow(op.vdd / kNominalVdd,
                                       params_.vddGamma);
    return temp_factor * vdd_factor;
}

double
RetentionModel::weakProbability(Seconds t_eff, const OperatingPoint &op,
                                double device_scale) const
{
    if (t_eff <= 0.0)
        return 0.0;
    DFAULT_ASSERT(device_scale > 0.0, "device retention scale must be > 0");
    // tau' = tau * scale; P(tau' < t) = F(t / scale).
    const double scale = tauScale(op) * device_scale;
    return stats::lognormalCdf(t_eff / scale, params_.mu, params_.sigma);
}

Seconds
RetentionModel::weakQuantile(double p, const OperatingPoint &op,
                             double device_scale) const
{
    DFAULT_ASSERT(p > 0.0 && p < 1.0, "quantile level out of (0,1)");
    const double scale = tauScale(op) * device_scale;
    return stats::lognormalQuantile(p, params_.mu, params_.sigma) * scale;
}

} // namespace dfault::dram
