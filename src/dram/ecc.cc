#include "dram/ecc.hh"

#include <bit>

#include "common/logging.hh"

namespace dfault::dram {

namespace {

constexpr int kParityBit = 71;      ///< Codeword bit index of overall parity.
constexpr int kFirstCheckBit = 64;  ///< Codeword index of Hamming check 0.

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

EccSecded::EccSecded()
{
    // Walk codeword positions 1..71 as the naive implementation did:
    // powers of two are Hamming check positions, everything else hosts
    // the next data bit. Fold each data bit's position index into the
    // per-check parity masks and record, per possible syndrome, which
    // codeword bit a decode must flip.
    parityMask_.fill(0);
    int data_bit = 0;
    int check_bit = 0;
    for (int pos = 1; pos <= 71; ++pos) {
        if (isPowerOfTwo(pos)) {
            syndrome_[pos].correctedBit =
                static_cast<std::int16_t>(kFirstCheckBit + check_bit);
            ++check_bit;
        } else {
            for (int j = 0; j < 7; ++j)
                if (pos & (1 << j))
                    parityMask_[j] |= std::uint64_t{1} << data_bit;
            syndrome_[pos].dataXor = std::uint64_t{1} << data_bit;
            syndrome_[pos].correctedBit =
                static_cast<std::int16_t>(data_bit);
            ++data_bit;
        }
    }
    // Syndromes 72..127 point beyond the codeword; their actions stay
    // at the default correctedBit = -1 (uncorrectable).
    DFAULT_ASSERT(data_bit == 64 && check_bit == 7,
                  "SECDED position table construction broken");
}

std::uint8_t
EccSecded::computeCheck(std::uint64_t data) const
{
    std::uint8_t check = 0;
    for (int j = 0; j < 7; ++j)
        check |= static_cast<std::uint8_t>(
            (std::popcount(data & parityMask_[j]) & 1) << j);
    // Overall parity covers all 72 bits: data + 7 Hamming bits + itself.
    int overall = std::popcount(data) & 1;
    overall ^= std::popcount(static_cast<unsigned>(check & 0x7f)) & 1;
    check |= static_cast<std::uint8_t>(overall << 7);
    return check;
}

Codeword
EccSecded::encode(std::uint64_t data) const
{
    return Codeword{data, computeCheck(data)};
}

DecodeResult
EccSecded::decode(const Codeword &received) const
{
    const std::uint8_t expected = computeCheck(received.data);

    // Hamming syndrome: recomputed vs stored check bits.
    const int syndrome = (expected ^ received.check) & 0x7f;
    // Overall parity of the received 72 bits; non-zero means odd number
    // of flips (1 or 3 or ...).
    int parity = std::popcount(received.data) & 1;
    parity ^= std::popcount(static_cast<unsigned>(received.check)) & 1;

    DecodeResult res;
    res.data = received.data;

    if (syndrome == 0 && parity == 0) {
        res.outcome = EccOutcome::NoError;
        return res;
    }
    if (syndrome == 0 && parity != 0) {
        // The overall parity bit itself flipped; data intact.
        res.outcome = EccOutcome::Corrected;
        res.correctedBit = kParityBit;
        return res;
    }
    if (parity != 0) {
        // Odd flip count with a non-zero syndrome: treat as single-bit
        // error at Hamming position `syndrome`. The table holds the
        // data-word correction (zero for check-bit flips) and the bit
        // index to report, or -1 when the syndrome points beyond the
        // codeword — not a possible single-bit error; real controllers
        // flag that as uncorrectable.
        const SyndromeAction &action = syndrome_[syndrome];
        if (action.correctedBit >= 0) {
            res.data ^= action.dataXor;
            res.correctedBit = action.correctedBit;
            res.outcome = EccOutcome::Corrected;
            return res;
        }
        res.outcome = EccOutcome::Uncorrectable;
        return res;
    }
    // Even flip count (>= 2) -> detected, uncorrectable.
    res.outcome = EccOutcome::Uncorrectable;
    return res;
}

DecodeResult
EccSecded::decodeKnownFlips(const Codeword &received, int flipped,
                            std::uint64_t original) const
{
    DecodeResult res = decode(received);
    if (flipped >= 3) {
        // The decoder believed it saw zero or one flipped bit: the error
        // escaped detection or was "corrected" into a different word.
        const bool fooled = res.outcome == EccOutcome::NoError ||
                            (res.outcome == EccOutcome::Corrected &&
                             res.data != original);
        if (fooled)
            res.outcome = EccOutcome::Miscorrected;
    } else if (res.outcome == EccOutcome::Corrected && res.data != original) {
        DFAULT_PANIC("SECDED failed to correct a single-bit error");
    }
    return res;
}

void
EccSecded::flipBit(Codeword &word, int bit)
{
    DFAULT_ASSERT(bit >= 0 && bit < 72, "codeword bit index out of range");
    if (bit < 64)
        word.data ^= (1ULL << bit);
    else
        word.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
}

} // namespace dfault::dram
