/**
 * @file
 * SECDED (72,64) error-correcting code, as implemented by server-grade
 * memory controllers (paper Table I).
 *
 * The code is an extended Hamming code: 7 Hamming check bits over
 * positions 1..71 of the codeword plus one overall parity bit. Decoding
 * classifies the stored word into:
 *  - no error,
 *  - CE  (single corrupted bit, corrected),
 *  - UE  (two corrupted bits, detected but uncorrectable),
 *  - SDC (three or more corrupted bits may alias onto a valid single-bit
 *         syndrome and be silently miscorrected).
 */

#ifndef DFAULT_DRAM_ECC_HH
#define DFAULT_DRAM_ECC_HH

#include <array>
#include <cstdint>

namespace dfault::dram {

/** Outcome of decoding one ECC word. */
enum class EccOutcome
{
    NoError,      ///< Syndrome clean.
    Corrected,    ///< Single-bit error corrected (CE).
    Uncorrectable,///< Double-bit error detected (UE).
    Miscorrected, ///< >2 bits flipped; decoder "corrected" the wrong bit
                  ///< or accepted a wrong word (silent data corruption).
};

/** A 72-bit SECDED codeword: 64 data bits plus 8 check bits. */
struct Codeword
{
    std::uint64_t data = 0;  ///< 64 data bits.
    std::uint8_t check = 0;  ///< 7 Hamming bits (low) + overall parity (MSB).

    bool operator==(const Codeword &) const = default;
};

/** Result of a decode: classification plus the recovered data word. */
struct DecodeResult
{
    EccOutcome outcome = EccOutcome::NoError;
    std::uint64_t data = 0;   ///< Data after any correction attempt.
    int correctedBit = -1;    ///< Codeword bit index corrected, if any.
};

/**
 * SECDED (72,64) encoder/decoder.
 *
 * Bit-parallel implementation: the seven Hamming checks are evaluated
 * as popcount folds over precomputed 64-bit parity masks (one AND plus
 * one POPCNT per check instead of a 64-iteration bit probe), and
 * decoding resolves the 7-bit syndrome through a 128-entry lookup
 * table instead of searching the position maps. Stateless apart from
 * those precomputed tables; cheap to construct and copy.
 */
class EccSecded
{
  public:
    EccSecded();

    /** Encode a 64-bit data word into a 72-bit codeword. */
    Codeword encode(std::uint64_t data) const;

    /**
     * Decode a (possibly corrupted) codeword.
     *
     * Note the decoder cannot see how many bits actually flipped; the
     * Miscorrected outcome is only distinguishable here because callers
     * of decodeKnownFlips() tell us ground truth. decode() itself reports
     * what real hardware would: NoError/Corrected/Uncorrectable.
     */
    DecodeResult decode(const Codeword &received) const;

    /**
     * Decode with ground truth: @p flipped is the number of bits the
     * fault injector actually flipped. Upgrades the outcome to
     * Miscorrected when the decoder was fooled (flipped >= 3 but the
     * decode looked like NoError or a single-bit correction, or the
     * "corrected" data differs from @p original).
     */
    DecodeResult decodeKnownFlips(const Codeword &received, int flipped,
                                  std::uint64_t original) const;

    /** Flip codeword bit @p bit (0..71); bits 64..71 are check bits. */
    static void flipBit(Codeword &word, int bit);

  private:
    /** Decode action for one non-zero Hamming syndrome. */
    struct SyndromeAction
    {
        /** XOR applied to the data word (0 for check-bit flips). */
        std::uint64_t dataXor = 0;
        /**
         * DecodeResult::correctedBit to report: the data bit index for
         * data positions, 64+j for check bit j, or -1 when the
         * syndrome points beyond the codeword (uncorrectable).
         */
        std::int16_t correctedBit = -1;
    };

    /**
     * Parity mask of Hamming check j: bit i is set when data bit i
     * sits at a codeword position whose index has bit j set, so check
     * j is popcount(data & parityMask_[j]) mod 2.
     */
    std::array<std::uint64_t, 7> parityMask_;
    /** Syndrome (1..127) -> correction; entry 0 is unused. */
    std::array<SyndromeAction, 128> syndrome_;

    std::uint8_t computeCheck(std::uint64_t data) const;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_ECC_HH
