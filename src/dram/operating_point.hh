/**
 * @file
 * DRAM operating point: the circuit and environmental parameters the
 * paper sweeps (refresh period, supply voltage, DIMM temperature).
 */

#ifndef DFAULT_DRAM_OPERATING_POINT_HH
#define DFAULT_DRAM_OPERATING_POINT_HH

#include <string>

#include "common/units.hh"

namespace dfault::dram {

using namespace units::literals;

/** Nominal DDR3 refresh period. */
constexpr Seconds kNominalTrefp = 64.0e-3;
/** Nominal DDR3 supply voltage. */
constexpr Volts kNominalVdd = 1.5;
/** Lowest VDD at which the X-Gene2 DIMMs still operate (paper §V). */
constexpr Volts kMinVdd = 1.428;
/** Maximum TREFP configurable through SLIMpro on the X-Gene2. */
constexpr Seconds kMaxTrefp = 2.283;

/**
 * One (TREFP, VDD, temperature) operating point.
 *
 * Defaults to the nominal DDR3 point at 50 degC, which manifests no
 * errors in the paper or in this model.
 */
struct OperatingPoint
{
    Seconds trefp = kNominalTrefp;
    Volts vdd = kNominalVdd;
    Celsius temperature = 50.0;

    bool operator==(const OperatingPoint &) const = default;

    /** "TREFP=2.283s VDD=1.428V T=70C" style label. */
    std::string label() const;

    /** Validate ranges; fatal() on nonsense (negative TREFP etc.). */
    void validate() const;
};

/** The TREFP levels used in the paper's WER sweep (Fig 7). */
inline constexpr Seconds kWerTrefpLevels[] = {0.618, 1.173, 1.727, 2.283};

/** The TREFP levels used in the paper's PUE study (Fig 9). */
inline constexpr Seconds kUeTrefpLevels[] = {1.450, 1.727, 2.283};

/** The DIMM temperature levels used throughout the paper. */
inline constexpr Celsius kTemperatureLevels[] = {50.0, 60.0, 70.0};

} // namespace dfault::dram

#endif // DFAULT_DRAM_OPERATING_POINT_HH
