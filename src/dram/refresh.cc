#include "dram/refresh.hh"

#include "common/logging.hh"

namespace dfault::dram {

RefreshScheduler::RefreshScheduler() : RefreshScheduler(Params{}) {}

RefreshScheduler::RefreshScheduler(const Params &params) : params_(params)
{
    if (params_.commandsPerPeriod <= 0)
        DFAULT_FATAL("refresh: commandsPerPeriod must be positive");
    if (params_.trfc <= 0.0)
        DFAULT_FATAL("refresh: tRFC must be positive");
    if (params_.commandNanojoules < 0.0)
        DFAULT_FATAL("refresh: command energy must be non-negative");
}

Seconds
RefreshScheduler::refreshInterval(const OperatingPoint &op) const
{
    op.validate();
    return op.trefp / params_.commandsPerPeriod;
}

double
RefreshScheduler::commandRate(const OperatingPoint &op) const
{
    return 1.0 / refreshInterval(op);
}

double
RefreshScheduler::blockedFraction(const OperatingPoint &op) const
{
    const double fraction = params_.trfc / refreshInterval(op);
    // A refresh interval shorter than tRFC would block permanently;
    // such a TREFP is a configuration error.
    if (fraction >= 1.0)
        DFAULT_FATAL("refresh: TREFP ", op.trefp,
                     " s leaves no time between refreshes");
    return fraction;
}

double
RefreshScheduler::refreshPower(const OperatingPoint &op) const
{
    return params_.commandNanojoules * 1e-9 * commandRate(op);
}

double
RefreshScheduler::commandsWithin(const OperatingPoint &op,
                                 Seconds duration) const
{
    DFAULT_ASSERT(duration >= 0.0, "duration cannot be negative");
    return duration / refreshInterval(op);
}

} // namespace dfault::dram
