/**
 * @file
 * Memory Controller Unit (MCU) model.
 *
 * Command-level accounting of one DDR3 channel, matching what the paper
 * extracts from the X-Gene2 performance counters: read/write commands
 * issued per MCU, row-buffer hits/misses, activations. The controller
 * also maintains per-row access statistics (activation counts and mean
 * inter-access intervals) which the error integrator uses to compute
 * each row's effective refresh interval and its neighbours' aggressor
 * activity.
 *
 * An open-page policy is modelled: an access to the open row of a bank
 * is a row hit; any other access precharges and activates (row miss).
 */

#ifndef DFAULT_DRAM_CONTROLLER_HH
#define DFAULT_DRAM_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "dram/geometry.hh"

namespace dfault::dram {

/** Cumulative activity of one DRAM row during a profiled run. */
struct RowActivity
{
    std::uint64_t accesses = 0;   ///< CAS commands touching the row.
    std::uint64_t activations = 0;///< ACT commands opening the row.
    Cycles firstCycle = 0;
    Cycles lastCycle = 0;
    /**
     * Longest observed stretch of cycles without an access to this
     * row: the window in which stored charge decays unrefreshed. A
     * burst-averaged interval would wildly overstate the implicit-
     * refresh effect for bursty access patterns.
     */
    Cycles maxGapCycles = 0;
    /** 128-bit column-touch bitmap (columns folded mod 128). */
    std::uint64_t wordMaskLo = 0;
    std::uint64_t wordMaskHi = 0;

    /** Mean time between accesses in cycles; 0 if fewer than 2. */
    double meanIntervalCycles() const;

    /** Distinct columns touched (exact for <=128 words/row). */
    int touchedWords() const;

    /** Record a column touch. */
    void touchColumn(std::uint32_t column);
};

/** Aggregate MCU counters (exported as program features). */
struct McuCounters
{
    std::uint64_t readCmds = 0;
    std::uint64_t writeCmds = 0;
    std::uint64_t activations = 0;
    std::uint64_t precharges = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;

    std::uint64_t totalCmds() const { return readCmds + writeCmds; }
};

/**
 * One memory channel: latency model, counters and per-row statistics
 * for the two ranks behind it.
 */
class Mcu
{
  public:
    struct Params
    {
        Cycles rowHitLatency = 36;   ///< CPU cycles, ~15 ns at 2.4 GHz
        Cycles rowMissLatency = 108; ///< CPU cycles, ~45 ns
        Cycles queuePenalty = 8;     ///< fixed controller overhead
        /**
         * Channel occupancy per command (64 B burst at DDR3-1866 is
         * ~4.3 ns ~ 10 CPU cycles): concurrent threads queue behind
         * each other, bounding per-channel bandwidth -- this is what
         * limits the parallel speedup of memory-bound kernels.
         */
        Cycles burstCycles = 10;
    };

    Mcu(const Geometry &geometry, int channel, const Params &params);
    Mcu(const Geometry &geometry, int channel);

    int channel() const { return channel_; }
    const McuCounters &counters() const { return counters_; }

    /**
     * Issue one DRAM access (a cache miss or writeback reaching memory).
     *
     * @param coord decoded word coordinate; must be on this channel
     * @param is_write true for a write command
     * @param cycle current CPU cycle
     * @return access latency in CPU cycles
     */
    Cycles access(const WordCoord &coord, bool is_write, Cycles cycle);

    /** Per-row activity for one rank of this channel. */
    const std::vector<RowActivity> &rowActivity(int rank) const;

    /** Reset counters and row statistics. */
    void reset();

  private:
    const Geometry &geometry_;
    int channel_;
    Params params_;
    McuCounters counters_;
    /** Open row per (rank, bank); -1 when the bank is precharged. */
    std::vector<std::int64_t> openRow_;
    /** Cycle at which the channel becomes free again. */
    Cycles busyUntil_ = 0;
    /** Row statistics per rank, indexed by Geometry::rowIndex(). */
    std::vector<std::vector<RowActivity>> rows_;
};

} // namespace dfault::dram

#endif // DFAULT_DRAM_CONTROLLER_HH
