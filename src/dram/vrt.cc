#include "dram/vrt.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfault::dram {

VrtModel::VrtModel() : VrtModel(Params{}) {}

VrtModel::VrtModel(const Params &params) : params_(params)
{
    if (params_.onRate <= 0.0 || params_.onRate > 1.0)
        DFAULT_FATAL("vrt: onRate must be in (0, 1]");
    if (params_.offRate < 0.0 || params_.offRate > 1.0)
        DFAULT_FATAL("vrt: offRate must be in [0, 1]");
}

double
VrtModel::stationaryActiveFraction() const
{
    return params_.onRate / (params_.onRate + params_.offRate);
}

double
VrtModel::everActiveProbability(std::uint64_t epochs) const
{
    if (epochs == 0)
        return 0.0;
    // Start from the stationary distribution; a quiet cell activates
    // with probability onRate in each subsequent epoch.
    const double pi = stationaryActiveFraction();
    const double never = (1.0 - pi) *
        std::pow(1.0 - params_.onRate, static_cast<double>(epochs - 1));
    return 1.0 - never;
}

double
VrtModel::firstActivationProbability(std::uint64_t epoch)
    const
{
    DFAULT_ASSERT(epoch >= 1, "epochs are 1-based");
    return everActiveProbability(epoch) - everActiveProbability(epoch - 1);
}

} // namespace dfault::dram
