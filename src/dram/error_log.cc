#include "dram/error_log.hh"

#include <numeric>

#include "common/logging.hh"

namespace dfault::dram {

ErrorLog::ErrorLog(const Geometry &geometry)
    : geometry_(geometry),
      ceWordsPerDevice_(geometry.deviceCount()),
      uePerDevice_(geometry.deviceCount(), 0)
{
}

bool
ErrorLog::report(const ErrorRecord &record)
{
    const int dev = geometry_.deviceIndex(record.device);

    switch (record.type) {
      case ErrorType::CE: {
        WordCoord coord;
        coord.channel = record.device.dimm;
        coord.rank = record.device.rank;
        coord.bank = record.bank;
        coord.row = record.row;
        coord.column = record.column;
        const std::uint64_t word = geometry_.wordIndexInDevice(coord);
        if (!ceWordsPerDevice_[dev].insert(word).second)
            return false; // already-known failing word
        break;
      }
      case ErrorType::UE:
        ++uePerDevice_[dev];
        break;
      case ErrorType::SDC:
        ++sdcTotal_;
        break;
    }
    records_.push_back(record);
    return true;
}

std::uint64_t
ErrorLog::uniqueCeWords(const DeviceId &dev) const
{
    return ceWordsPerDevice_[geometry_.deviceIndex(dev)].size();
}

std::uint64_t
ErrorLog::uniqueCeWordsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &set : ceWordsPerDevice_)
        total += set.size();
    return total;
}

std::uint64_t
ErrorLog::ueCount(const DeviceId &dev) const
{
    return uePerDevice_[geometry_.deviceIndex(dev)];
}

std::uint64_t
ErrorLog::ueCountTotal() const
{
    return std::accumulate(uePerDevice_.begin(), uePerDevice_.end(),
                           std::uint64_t{0});
}

std::uint64_t
ErrorLog::sdcCountTotal() const
{
    return sdcTotal_;
}

void
ErrorLog::clear()
{
    records_.clear();
    for (auto &set : ceWordsPerDevice_)
        set.clear();
    std::fill(uePerDevice_.begin(), uePerDevice_.end(), 0);
    sdcTotal_ = 0;
}

} // namespace dfault::dram
