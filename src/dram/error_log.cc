#include "dram/error_log.hh"

#include <numeric>

#include "common/logging.hh"
#include "obs/events.hh"
#include "obs/stats.hh"

namespace dfault::dram {

namespace {

const char *
errorTypeName(ErrorType type)
{
    switch (type) {
      case ErrorType::CE:
        return "CE";
      case ErrorType::UE:
        return "UE";
      case ErrorType::SDC:
        return "SDC";
    }
    DFAULT_PANIC("unreachable error type");
}

} // namespace

ErrorLog::ErrorLog(const Geometry &geometry)
    : geometry_(geometry),
      ceWordsPerDevice_(geometry.deviceCount()),
      uePerDevice_(geometry.deviceCount(), 0)
{
}

bool
ErrorLog::report(const ErrorRecord &record)
{
    const int dev = geometry_.deviceIndex(record.device);
    bool fresh = true;

    switch (record.type) {
      case ErrorType::CE: {
        WordCoord coord;
        coord.channel = record.device.dimm;
        coord.rank = record.device.rank;
        coord.bank = record.bank;
        coord.row = record.row;
        coord.column = record.column;
        const std::uint64_t word = geometry_.wordIndexInDevice(coord);
        fresh = ceWordsPerDevice_[dev].insert(word).second;
        break;
      }
      case ErrorType::UE:
        ++uePerDevice_[dev];
        break;
      case ErrorType::SDC:
        ++sdcTotal_;
        break;
    }

    // SLIMpro-style telemetry: every report leaves a trace even when
    // the word location is already known (the common case over a
    // 2-hour run); only fresh records enter the retained log.
    auto &reg = obs::Registry::instance();
    switch (record.type) {
      case ErrorType::CE:
        reg.counter("dram.errorlog.ce", "CE reports (incl. repeats)")
            .inc();
        break;
      case ErrorType::UE:
        reg.counter("dram.errorlog.ue", "UE reports").inc();
        break;
      case ErrorType::SDC:
        reg.counter("dram.errorlog.sdc", "SDC reports").inc();
        break;
    }
    auto &sink = obs::EventSink::instance();
    if (sink.enabled()) {
        obs::JsonWriter w;
        w.field("error", errorTypeName(record.type));
        w.field("dimm", record.device.dimm);
        w.field("rank", record.device.rank);
        w.field("bank", record.bank);
        w.field("row", static_cast<std::uint64_t>(record.row));
        w.field("column", static_cast<std::uint64_t>(record.column));
        w.field("epoch", record.epoch);
        w.field("bits_flipped", record.bitsFlipped);
        w.field("new_location", fresh);
        sink.emit("dram_error", w);
    }

    if (!fresh)
        return false; // already-known failing word
    records_.push_back(record);
    return true;
}

std::uint64_t
ErrorLog::uniqueCeWords(const DeviceId &dev) const
{
    return ceWordsPerDevice_[geometry_.deviceIndex(dev)].size();
}

std::uint64_t
ErrorLog::uniqueCeWordsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &set : ceWordsPerDevice_)
        total += set.size();
    return total;
}

std::uint64_t
ErrorLog::ueCount(const DeviceId &dev) const
{
    return uePerDevice_[geometry_.deviceIndex(dev)];
}

std::uint64_t
ErrorLog::ueCountTotal() const
{
    return std::accumulate(uePerDevice_.begin(), uePerDevice_.end(),
                           std::uint64_t{0});
}

std::uint64_t
ErrorLog::sdcCountTotal() const
{
    return sdcTotal_;
}

void
ErrorLog::clear()
{
    records_.clear();
    for (auto &set : ceWordsPerDevice_)
        set.clear();
    std::fill(uePerDevice_.begin(), uePerDevice_.end(), 0);
    sdcTotal_ = 0;
}

} // namespace dfault::dram
