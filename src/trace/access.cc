#include "trace/access.hh"

#include <algorithm>

namespace dfault::trace {

void
InstrumentationBus::attach(AccessSink *sink)
{
    if (sink == nullptr)
        return;
    if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end())
        sinks_.push_back(sink);
}

void
InstrumentationBus::detach(AccessSink *sink)
{
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
                 sinks_.end());
}

} // namespace dfault::trace
