#include "trace/entropy_sampler.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "stats/entropy.hh"

namespace dfault::trace {

EntropySampler::EntropySampler() : EntropySampler(Params{}) {}

EntropySampler::EntropySampler(const Params &params) : params_(params)
{
    if (params_.stride == 0)
        DFAULT_FATAL("entropy sampler: stride must be positive");
    reservoir_.reserve(params_.reservoirSize);
}

void
EntropySampler::onAccess(const AccessEvent &event)
{
    if (!event.isWrite)
        return;
    if (storeCounter_++ % params_.stride != 0)
        return;
    ++sampled_;

    // Histogram the two 32-bit halves (Eq. 5 is defined over 32-bit
    // words). Once the exact table is full, only update known values:
    // the tail mass is dominated by the already-seen head for every
    // workload we model, and the estimator remains a lower bound.
    const auto lo = static_cast<std::uint32_t>(event.value);
    const auto hi = static_cast<std::uint32_t>(event.value >> 32);
    for (const std::uint32_t half : {lo, hi}) {
        if (!saturated_) {
            ++counts_[half];
            if (counts_.size() >= params_.maxDistinct)
                saturated_ = true;
        } else {
            auto it = counts_.find(half);
            if (it != counts_.end())
                ++it->second;
        }
    }

    // Deterministic reservoir of raw 64-bit words.
    ++reservoirSeen_;
    if (reservoir_.size() < params_.reservoirSize) {
        reservoir_.push_back(event.value);
    } else {
        std::uint64_t s = reservoirSeen_;
        const std::uint64_t slot = splitMix64(s) % reservoirSeen_;
        if (slot < reservoir_.size())
            reservoir_[slot] = event.value;
    }
}

double
EntropySampler::entropyBits() const
{
    return stats::shannonEntropy(counts_);
}

std::array<double, 64>
EntropySampler::bitOneProbabilities() const
{
    std::array<double, 64> p{};
    if (reservoir_.empty()) {
        p.fill(0.5);
        return p;
    }
    stats::bitOneProbabilities(reservoir_, p);
    return p;
}

void
EntropySampler::reset()
{
    storeCounter_ = 0;
    sampled_ = 0;
    saturated_ = false;
    counts_.clear();
    reservoir_.clear();
    reservoirSeen_ = 0;
}

} // namespace dfault::trace
