/**
 * @file
 * Data-pattern entropy sampling (paper §III-D, Eq. 5).
 *
 * The data-pattern entropy HDP quantifies the distribution of values a
 * workload writes to memory: HDP = -sum_i P(x_i) log2 P(x_i) over the
 * 32-bit words written. The sampler observes store data, splits each
 * 64-bit store into two 32-bit words, and maintains an occurrence
 * histogram (bounded; see maxDistinct). It also retains a bounded
 * reservoir of raw 64-bit words from which the per-bit-position one-
 * probabilities — used by the true-/anti-cell vulnerability model — are
 * derived.
 */

#ifndef DFAULT_TRACE_ENTROPY_SAMPLER_HH
#define DFAULT_TRACE_ENTROPY_SAMPLER_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/access.hh"

namespace dfault::trace {

/** Bounded-memory estimator of HDP and per-bit write statistics. */
class EntropySampler : public AccessSink
{
  public:
    struct Params
    {
        /** Sample one of every `stride` stores. */
        std::uint64_t stride = 7;
        /** Cap on distinct 32-bit values tracked exactly. */
        std::size_t maxDistinct = 1 << 20;
        /** Size of the raw-word reservoir for bit statistics. */
        std::size_t reservoirSize = 1 << 15;
    };

    EntropySampler();
    explicit EntropySampler(const Params &params);

    void onAccess(const AccessEvent &event) override;

    /** Estimated data-pattern entropy in bits (0..32). */
    double entropyBits() const;

    /** Number of stores sampled. */
    std::uint64_t sampledStores() const { return sampled_; }

    /**
     * Per-bit probability that a written 64-bit word has a 1 in each
     * position, from the reservoir. All 0.5 when nothing was sampled.
     */
    std::array<double, 64> bitOneProbabilities() const;

    /** Forget all state. */
    void reset();

  private:
    Params params_;
    std::uint64_t storeCounter_ = 0;
    std::uint64_t sampled_ = 0;
    bool saturated_ = false;
    std::unordered_map<std::uint32_t, std::uint64_t> counts_;
    std::vector<std::uint64_t> reservoir_;
    std::uint64_t reservoirSeen_ = 0;
};

} // namespace dfault::trace

#endif // DFAULT_TRACE_ENTROPY_SAMPLER_HH
