#include "trace/reuse_tracker.hh"

#include "common/logging.hh"

namespace dfault::trace {

ReuseTracker::ReuseTracker(std::uint64_t capacity_bytes)
    : lastRef_(capacity_bytes / units::bytesPerWord + 1, 0)
{
}

void
ReuseTracker::onAccess(const AccessEvent &event)
{
    const std::uint64_t word = event.addr / units::bytesPerWord;
    DFAULT_ASSERT(word < lastRef_.size(),
                  "access outside the tracked range");
    const std::uint64_t prev = lastRef_[word];
    if (prev != 0) {
        distances_.add(static_cast<double>(event.instrIndex - (prev - 1)));
    } else {
        ++uniqueWords_;
    }
    lastRef_[word] = event.instrIndex + 1;
}

double
ReuseTracker::averageReuseSeconds(double cpi, double clock_hz) const
{
    DFAULT_ASSERT(clock_hz > 0.0, "clock frequency must be positive");
    if (distances_.count() == 0)
        return 0.0;
    return distances_.mean() * cpi / clock_hz;
}

void
ReuseTracker::reset()
{
    std::fill(lastRef_.begin(), lastRef_.end(), 0);
    distances_.reset();
    uniqueWords_ = 0;
}

} // namespace dfault::trace
