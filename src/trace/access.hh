/**
 * @file
 * Instruction-level memory-access events and instrumentation sinks.
 *
 * Plays the role DynamoRIO plays in the paper: every load and store a
 * workload executes is published to a set of observers (reuse-distance
 * tracking, write-data sampling) before it enters the cache hierarchy.
 */

#ifndef DFAULT_TRACE_ACCESS_HH
#define DFAULT_TRACE_ACCESS_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace dfault::trace {

/** One dynamic memory access as seen by the instrumentation layer. */
struct AccessEvent
{
    int thread = 0;
    Addr addr = 0;
    bool isWrite = false;
    std::uint64_t value = 0;      ///< data written (stores only)
    std::uint64_t instrIndex = 0; ///< global dynamic instruction number
};

/** Observer interface for instrumented accesses. */
class AccessSink
{
  public:
    virtual ~AccessSink() = default;

    /** Called for every instrumented access, in program order. */
    virtual void onAccess(const AccessEvent &event) = 0;
};

/** Fan-out of access events to registered sinks. */
class InstrumentationBus
{
  public:
    /** Register a sink; the bus does not take ownership. */
    void attach(AccessSink *sink);

    /** Remove a previously attached sink (no-op if absent). */
    void detach(AccessSink *sink);

    /** Publish one event to all sinks. */
    void publish(const AccessEvent &event)
    {
        for (AccessSink *sink : sinks_)
            sink->onAccess(event);
    }

    bool empty() const { return sinks_.empty(); }

  private:
    std::vector<AccessSink *> sinks_;
};

} // namespace dfault::trace

#endif // DFAULT_TRACE_ACCESS_HH
