/**
 * @file
 * DRAM reuse-time measurement (paper §III-D, Eq. 4).
 *
 * The DRAM reuse time Treuse is the average time between accesses to the
 * same 64-bit word. Per access i, T^i_reuse = CPI * D^i_reuse where
 * D^i_reuse is the number of dynamic instructions since the last
 * reference to the same word; Treuse averages over all accesses. The
 * instruction distances are collected here; the CPI (and hence seconds)
 * conversion happens after the run when the final CPI is known.
 */

#ifndef DFAULT_TRACE_REUSE_TRACKER_HH
#define DFAULT_TRACE_REUSE_TRACKER_HH

#include <cstdint>
#include <vector>

#include "stats/summary.hh"
#include "trace/access.hh"

namespace dfault::trace {

/**
 * Tracks per-word last-reference instruction indices over a contiguous
 * address range [0, capacityBytes) and accumulates reuse distances.
 */
class ReuseTracker : public AccessSink
{
  public:
    /** @param capacity_bytes size of the trackable address range. */
    explicit ReuseTracker(std::uint64_t capacity_bytes);

    void onAccess(const AccessEvent &event) override;

    /** Number of accesses that had a prior reference (reuses). */
    std::uint64_t reuseCount() const { return distances_.count(); }

    /** Mean reuse distance in instructions. */
    double meanReuseDistance() const { return distances_.mean(); }

    /** Full distance statistics. */
    const stats::RunningStats &distanceStats() const { return distances_; }

    /** Number of distinct 64-bit words referenced (the footprint). */
    std::uint64_t uniqueWords() const { return uniqueWords_; }

    /**
     * Average reuse time in seconds: meanReuseDistance * cpi / clock_hz
     * (Eq. 4 summed per Eq. in §III-D). Accesses without a prior
     * reference (cold misses) do not contribute, as in the paper.
     */
    double averageReuseSeconds(double cpi, double clock_hz) const;

    /** Forget all state. */
    void reset();

  private:
    /** last instruction index + 1 per word; 0 = never referenced. */
    std::vector<std::uint64_t> lastRef_;
    stats::RunningStats distances_;
    std::uint64_t uniqueWords_ = 0;
};

} // namespace dfault::trace

#endif // DFAULT_TRACE_REUSE_TRACKER_HH
