#include "fi/durable.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fi/injector.hh"

namespace dfault::fi {

namespace {

constexpr int kMaxAttempts = 3;

/**
 * One write-temp-fsync-rename attempt. @p attempt keys the io.* fault
 * schedule so injected transient failures recover on retry.
 */
bool
writeOnce(const std::string &path, const std::string &tmp,
          std::string_view body, std::uint64_t key, int attempt)
{
    Injector &inj = Injector::instance();
    if (inj.armed() && inj.shouldFire("io.open", key, attempt)) {
        DFAULT_WARN("injected io.open failure for ", path);
        return false;
    }
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (out == nullptr) {
        DFAULT_WARN("cannot create ", tmp, ": ", std::strerror(errno));
        return false;
    }
    if (inj.armed() && inj.shouldFire("io.short_write", key, attempt)) {
        // Torn write: half the body lands in the temp file, then the
        // writer "dies". The partial temp is deliberately left behind —
        // a crashed process would not clean up either — so tests can
        // prove the committed path never observes the truncation and a
        // retry still converges.
        const std::size_t half = body.size() / 2;
        std::fwrite(body.data(), 1, half, out);
        std::fflush(out);
        std::fclose(out);
        DFAULT_WARN("injected io.short_write for ", path, ": wrote ", half,
                    " of ", body.size(), " bytes, temp left behind");
        return false;
    }
    bool ok = std::fwrite(body.data(), 1, body.size(), out) == body.size();
    ok = ok && std::fflush(out) == 0;
    if (ok && inj.armed() && inj.shouldFire("io.write", key, attempt)) {
        DFAULT_WARN("injected io.write failure for ", path);
        ok = false;
    }
    // fsync before rename: once the new name is visible it must also
    // be durable, or a crash could leave an empty committed file.
    ok = ok && ::fsync(fileno(out)) == 0;
    if (std::fclose(out) != 0)
        ok = false;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        DFAULT_WARN("cannot rename ", tmp, " to ", path, ": ",
                    std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

bool
atomicWriteFile(const std::string &path, std::string_view body)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const std::uint64_t key = fnv1a64(path);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        if (writeOnce(path, tmp, body, key, attempt))
            return true;
    }
    DFAULT_WARN("giving up on ", path, " after ", kMaxAttempts,
                " attempts");
    return false;
}

std::optional<std::string>
readFile(const std::string &path, std::string *error)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) {
        if (error != nullptr)
            *error = detail::concat("cannot open ", path, ": ",
                                    std::strerror(errno));
        return std::nullopt;
    }
    std::string body;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        body.append(buf, got);
    const bool bad = std::ferror(in) != 0;
    std::fclose(in);
    if (bad) {
        if (error != nullptr)
            *error = detail::concat("read error on ", path);
        return std::nullopt;
    }
    return body;
}

} // namespace dfault::fi
