/**
 * @file
 * Deterministic fault injection.
 *
 * The injector holds a set of *armed fault points* — named places in
 * the pipeline that ask "should I fail here?" before doing their real
 * work. A point that is not armed costs one relaxed atomic load, so
 * the checks stay in production code paths permanently.
 *
 * Fault schedules are seeded: whether a check fires is a pure function
 * of (spec seed, point name, caller key, attempt), so a chaos run is
 * exactly reproducible and a retried attempt re-rolls deterministically
 * rather than hitting the same fault forever. Points are armed from the
 * DFAULT_FAULTS environment variable at first use, or programmatically
 * via arm().
 *
 * Spec grammar (see docs/robustness.md):
 *
 *     spec   := point [":" param ("," param)*] (";" spec)?
 *     param  := key "=" value
 *
 * e.g. DFAULT_FAULTS='task.throw:every=3,max_attempt=1;sweep.kill:after=4'
 *
 * Parameters:
 *   rate=P        fire with probability P per eligible check (default 1)
 *   every=N       fire only when key %% N == 0 (default: any key)
 *   below=N       fire only when key < N (default: any key). Unlike
 *                 count=/after= this is a pure function of the key, so
 *                 a burst stays bit-identical at any thread count —
 *                 the primitive behind the CI breaker-burst case
 *   max_attempt=N fire only when attempt < N, so retries recover
 *   count=N       total fire budget for the point (default unlimited)
 *   after=N       first N checks of the point never fire (arrival order)
 *   seed=S        schedule seed (default 0xfau17)
 *   code=C        process exit code used by kill-style points (default 9)
 *   ms=N          sleep length used by stall-style points (default 1000)
 *
 * Known points: task.throw (par::Pool task body), task.stall and
 * measure.nan (CharacterizationCampaign::measureOn), io.open / io.write
 * / io.short_write (fi::atomicWriteFile), sweep.kill (campaign
 * checkpoint journal), shutdown.slow_drain (dfault_cli shutdown
 * epilogue), serve.slow / serve.error / serve.reject
 * (serve::PredictionService, keyed by submission id), serve.kill
 * (_Exit between the tick commit and its journal write, keyed by
 * tick), journal.write / journal.torn_segment (the serve write-ahead
 * journal record write fails outright / lands half-written, keyed by
 * tick; serve/journal.hh). task.stall was named campaign.hang before
 * it gained real stall semantics (it used to throw; see
 * docs/robustness.md).
 */

#ifndef DFAULT_FI_INJECTOR_HH
#define DFAULT_FI_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dfault::fi {

/** Thrown by firing fault points; carries the point name. */
class FaultError : public std::runtime_error
{
  public:
    FaultError(std::string point, const std::string &message)
        : std::runtime_error(message), point_(std::move(point))
    {
    }

    /** Name of the fault point that fired. */
    const std::string &point() const { return point_; }

  private:
    std::string point_;
};

/** Parsed parameters of one armed fault point. */
struct FaultSpec
{
    double rate = 1.0;
    std::uint64_t every = 0; ///< 0 = no key gate
    std::uint64_t below = ~0ULL; ///< fire only when key < below
    int maxAttempt = 1 << 30;
    std::uint64_t count = ~0ULL;
    std::uint64_t after = 0;
    std::uint64_t seed = 0xfa517;
    int exitCode = 9;
    std::uint64_t sleepMs = 1000;
};

/**
 * Process-global registry of armed fault points.
 *
 * arm()/disarm() are meant for setup code (env, config parsing, test
 * fixtures) before parallel work starts; shouldFire() is safe to call
 * concurrently from pool workers.
 */
class Injector
{
  public:
    /** The process-wide injector, armed from DFAULT_FAULTS on first use. */
    static Injector &instance();

    /**
     * Parse @p spec (grammar above) and arm its points, replacing any
     * existing spec for the same point name. Fatal on malformed specs:
     * they only come from user config.
     */
    void arm(const std::string &spec);

    /** Disarm every point and forget all check/fire counters. */
    void disarm();

    /** True when at least one point is armed (one relaxed load). */
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /**
     * True when point @p point fires for (@p key, @p attempt). Counts
     * the check and consumes fire budget when it does fire.
     */
    bool shouldFire(std::string_view point, std::uint64_t key,
                    int attempt = 0);

    /** Throw FaultError when shouldFire(); no-op otherwise. */
    void maybeThrow(std::string_view point, std::uint64_t key,
                    int attempt = 0);

    /**
     * Terminate the process with the point's exit code (via _Exit, no
     * cleanup — models a kill) when shouldFire(); no-op otherwise.
     */
    void maybeKill(std::string_view point, std::uint64_t key = 0);

    /**
     * Sleep for the point's ms= budget (models a stuck task / slow
     * drain) when shouldFire(); no-op otherwise. The sleep is a plain
     * bounded std::this_thread::sleep_for — long enough to trip the
     * par::Pool watchdog deterministically when ms exceeds the armed
     * task_timeout, short enough that chaos tests never rely on real
     * unbounded hangs. Returns true when it slept.
     */
    bool maybeStall(std::string_view point, std::uint64_t key,
                    int attempt = 0);

    /** @p value, or a quiet NaN when the point fires. */
    double corruptDouble(std::string_view point, std::uint64_t key,
                         double value, int attempt = 0);

    /** Times the point fired since it was armed. */
    std::uint64_t firedCount(std::string_view point) const;

    /** (point, fired) for every armed point, name-sorted. */
    std::vector<std::pair<std::string, std::uint64_t>> firedCounts() const;

  private:
    struct Point
    {
        FaultSpec spec;
        std::uint64_t checks = 0;
        std::uint64_t fired = 0;
    };

    const Point *findLocked(std::string_view point) const;

    mutable std::mutex mutex_;
    std::map<std::string, Point, std::less<>> points_;
    std::atomic<bool> armed_{false};
};

} // namespace dfault::fi

#endif // DFAULT_FI_INJECTOR_HH
