/**
 * @file
 * Durable, atomic artifact writes.
 *
 * Every artifact the pipeline emits (stats dumps, traces, manifests,
 * CSV reports, model files, checkpoint cells) used to be written with
 * a plain truncating stream: a crash mid-write left a corrupt file
 * under the final name. atomicWriteFile() instead writes the full body
 * to a sibling temporary, flushes and fsyncs it, then rename()s it
 * over the destination — readers see either the old complete file or
 * the new complete file, never a torn one.
 *
 * The helper is also a fault-injection surface: the io.open and
 * io.write points simulate transient filesystem failures, which the
 * helper absorbs with a bounded deterministic retry before giving up.
 */

#ifndef DFAULT_FI_DURABLE_HH
#define DFAULT_FI_DURABLE_HH

#include <optional>
#include <string>
#include <string_view>

namespace dfault::fi {

/**
 * Atomically replace @p path with @p body (written verbatim). Returns
 * false when the write ultimately fails; the destination is left
 * untouched in that case and the temporary is removed.
 */
bool atomicWriteFile(const std::string &path, std::string_view body);

/**
 * Read @p path fully. On failure returns nullopt and, when @p error is
 * non-null, stores a message naming the path and cause.
 */
std::optional<std::string> readFile(const std::string &path,
                                    std::string *error = nullptr);

} // namespace dfault::fi

#endif // DFAULT_FI_DURABLE_HH
