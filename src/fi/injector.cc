#include "fi/injector.hh"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"

namespace dfault::fi {

namespace {

/** Uniform [0,1) draw from a stateless hash of the schedule inputs. */
double
scheduleUniform(std::uint64_t seed, std::string_view point,
                std::uint64_t key, int attempt)
{
    std::uint64_t h = hashCombine(seed, fnv1a64(point));
    h = hashCombine(h, key);
    h = hashCombine(h, static_cast<std::uint64_t>(attempt));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
parseU64(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const std::string copy(text);
    const unsigned long long v = std::strtoull(copy.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseDouble(std::string_view text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const std::string copy(text);
    const double v = std::strtod(copy.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

void
applyParam(const std::string &point, FaultSpec &spec, std::string_view key,
           std::string_view value)
{
    std::uint64_t u = 0;
    double d = 0.0;
    if (key == "rate") {
        if (!parseDouble(value, d) || !(d >= 0.0) || !(d <= 1.0))
            DFAULT_FATAL("fault spec '", point, "': rate must be in [0,1], "
                         "got '", std::string(value), "'");
        spec.rate = d;
    } else if (key == "every") {
        if (!parseU64(value, u))
            DFAULT_FATAL("fault spec '", point, "': bad every '",
                         std::string(value), "'");
        spec.every = u;
    } else if (key == "below") {
        // strtoull silently wraps a negative literal to a huge value,
        // which would turn "never fire" into "always fire" — reject it
        // by name instead.
        if (value.starts_with('-'))
            DFAULT_FATAL("fault spec '", point, "': below must be >= 0, "
                         "got '", std::string(value), "'");
        if (!parseU64(value, u))
            DFAULT_FATAL("fault spec '", point, "': bad below '",
                         std::string(value), "'");
        spec.below = u;
    } else if (key == "max_attempt") {
        if (!parseU64(value, u) || u > (1u << 30))
            DFAULT_FATAL("fault spec '", point, "': bad max_attempt '",
                         std::string(value), "'");
        spec.maxAttempt = static_cast<int>(u);
    } else if (key == "count") {
        if (!parseU64(value, u))
            DFAULT_FATAL("fault spec '", point, "': bad count '",
                         std::string(value), "'");
        spec.count = u;
    } else if (key == "after") {
        if (!parseU64(value, u))
            DFAULT_FATAL("fault spec '", point, "': bad after '",
                         std::string(value), "'");
        spec.after = u;
    } else if (key == "seed") {
        if (!parseU64(value, u))
            DFAULT_FATAL("fault spec '", point, "': bad seed '",
                         std::string(value), "'");
        spec.seed = u;
    } else if (key == "code") {
        if (!parseU64(value, u) || u > 255)
            DFAULT_FATAL("fault spec '", point, "': bad code '",
                         std::string(value), "'");
        spec.exitCode = static_cast<int>(u);
    } else if (key == "ms") {
        // Bounded by design: injected stalls must trip watchdogs, not
        // recreate the unbounded hangs they stand in for.
        if (!parseU64(value, u) || u > 600000)
            DFAULT_FATAL("fault spec '", point, "': ms must be in "
                         "[0, 600000], got '", std::string(value), "'");
        spec.sleepMs = u;
    } else {
        DFAULT_FATAL("fault spec '", point, "': unknown parameter '",
                     std::string(key), "'");
    }
}

} // namespace

Injector &
Injector::instance()
{
    static Injector injector;
    static std::once_flag armedFromEnv;
    std::call_once(armedFromEnv, [] {
        if (const char *env = std::getenv("DFAULT_FAULTS");
            env != nullptr && *env != '\0')
            injector.arm(env);
    });
    return injector;
}

void
Injector::arm(const std::string &spec)
{
    std::size_t start = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    while (start <= spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string_view entry =
            std::string_view(spec).substr(start, end - start);
        start = end + 1;
        if (entry.empty())
            continue;

        const std::size_t colon = entry.find(':');
        const std::string name(entry.substr(0, colon));
        if (name.empty())
            DFAULT_FATAL("fault spec: empty point name in '", spec, "'");
        for (const char c : name)
            if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '.' &&
                c != '_')
                DFAULT_FATAL("fault spec: bad point name '", name, "'");

        FaultSpec parsed;
        if (colon != std::string_view::npos) {
            std::string_view params = entry.substr(colon + 1);
            while (!params.empty()) {
                std::size_t comma = params.find(',');
                const std::string_view kv = params.substr(0, comma);
                params = comma == std::string_view::npos
                             ? std::string_view()
                             : params.substr(comma + 1);
                const std::size_t eq = kv.find('=');
                if (eq == std::string_view::npos)
                    DFAULT_FATAL("fault spec '", name, "': expected k=v, "
                                 "got '", std::string(kv), "'");
                applyParam(name, parsed, kv.substr(0, eq),
                           kv.substr(eq + 1));
            }
        }
        points_[name] = Point{parsed, 0, 0};
    }
    armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void
Injector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    points_.clear();
    armed_.store(false, std::memory_order_relaxed);
}

bool
Injector::shouldFire(std::string_view point, std::uint64_t key, int attempt)
{
    if (!armed())
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(point);
    if (it == points_.end())
        return false;
    Point &p = it->second;
    const std::uint64_t check = p.checks++;
    if (check < p.spec.after)
        return false;
    if (attempt >= p.spec.maxAttempt)
        return false;
    if (p.spec.every != 0 && key % p.spec.every != 0)
        return false;
    if (key >= p.spec.below)
        return false;
    if (p.fired >= p.spec.count)
        return false;
    if (p.spec.rate < 1.0 &&
        scheduleUniform(p.spec.seed, point, key, attempt) >= p.spec.rate)
        return false;
    ++p.fired;
    return true;
}

void
Injector::maybeThrow(std::string_view point, std::uint64_t key, int attempt)
{
    if (shouldFire(point, key, attempt)) {
        const std::string name(point);
        throw FaultError(name,
                         detail::concat("injected fault '", name, "' (key ",
                                        key, ", attempt ", attempt, ")"));
    }
}

void
Injector::maybeKill(std::string_view point, std::uint64_t key)
{
    if (!shouldFire(point, key, 0))
        return;
    int code = 9;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const Point *p = findLocked(point); p != nullptr)
            code = p->spec.exitCode;
    }
    DFAULT_WARN("injected kill at '", std::string(point), "' (key ", key,
                "), exiting ", code);
    std::_Exit(code);
}

bool
Injector::maybeStall(std::string_view point, std::uint64_t key, int attempt)
{
    if (!shouldFire(point, key, attempt))
        return false;
    std::uint64_t ms = 1000;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const Point *p = findLocked(point); p != nullptr)
            ms = p->spec.sleepMs;
    }
    DFAULT_WARN("injected stall at '", std::string(point), "' (key ", key,
                ", attempt ", attempt, "): sleeping ", ms, " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return true;
}

double
Injector::corruptDouble(std::string_view point, std::uint64_t key,
                        double value, int attempt)
{
    if (shouldFire(point, key, attempt)) {
        DFAULT_WARN("injected corruption at '", std::string(point),
                    "' (key ", key, "): value -> NaN");
        return std::numeric_limits<double>::quiet_NaN();
    }
    return value;
}

std::uint64_t
Injector::firedCount(std::string_view point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Point *p = findLocked(point);
    return p != nullptr ? p->fired : 0;
}

std::vector<std::pair<std::string, std::uint64_t>>
Injector::firedCounts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(points_.size());
    for (const auto &[name, point] : points_)
        out.emplace_back(name, point.fired);
    return out;
}

const Injector::Point *
Injector::findLocked(std::string_view point) const
{
    const auto it = points_.find(point);
    return it == points_.end() ? nullptr : &it->second;
}

} // namespace dfault::fi
