/**
 * @file
 * Lightweight typed key/value configuration store.
 *
 * Used by the examples and benchmark drivers to override simulation
 * parameters from the command line without pulling in a full option
 * parser. Keys are dotted strings ("campaign.footprint_mib"); values are
 * stored as strings and converted on read.
 */

#ifndef DFAULT_COMMON_CONFIG_HH
#define DFAULT_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dfault {

/** Typed key/value configuration with "key=value" command-line parsing. */
class Config
{
  public:
    Config() = default;

    /** Set or overwrite a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, double value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, bool value);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    /**
     * Typed getters returning @p fallback when the key is absent.
     * A present key that fails to convert is a user error -> fatal().
     * getDouble additionally rejects non-finite values ("nan", "inf"):
     * no simulation parameter is meaningfully NaN, and letting one
     * through poisons every downstream model silently.
     */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    double getDouble(const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &key, std::int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * Range-checked getters: fatal(), naming the key and the allowed
     * range, when the (present) value falls outside [lo, hi]. The
     * fallback is not range-checked — defaults are the library's.
     */
    double getDoubleIn(const std::string &key, double fallback, double lo,
                       double hi) const;
    std::int64_t getIntIn(const std::string &key, std::int64_t fallback,
                          std::int64_t lo, std::int64_t hi) const;

    /**
     * Parse argv-style "key=value" tokens; tokens without '=' are
     * returned untouched for the caller to interpret.
     */
    std::vector<std::string> parseArgs(int argc, const char *const *argv);

    /** All keys in sorted order (for dumping resolved configs). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace dfault

#endif // DFAULT_COMMON_CONFIG_HH
