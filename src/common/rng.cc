#include "common/rng.hh"

#include "common/logging.hh"

namespace dfault {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Rng
Rng::fork(std::uint64_t key)
{
    return Rng(hashCombine(next(), key));
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    DFAULT_ASSERT(n > 0, "uniformInt range must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~0ULL - n + 1) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    DFAULT_ASSERT(lo <= hi, "uniformInt bounds inverted");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller transform.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double lambda)
{
    DFAULT_ASSERT(lambda > 0.0, "exponential rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth: multiply uniforms until below exp(-mean).
        const double limit = std::exp(-mean);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation with continuity correction.
    const double draw = normal(mean, std::sqrt(mean)) + 0.5;
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

} // namespace dfault
