#include "common/logging.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>

#include <unistd.h>

namespace dfault {
namespace detail {

namespace {
std::atomic<bool> g_quiet{false};
} // namespace

void
setQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return g_quiet.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

namespace {

/**
 * Preformat the whole line and hand it to the OS in one write: stderr
 * is unbuffered, so concurrent warn()/inform() calls from parallel
 * sweeps emit whole lines instead of interleaved fragments.
 */
void
emitLine(const char *prefix, const std::string &msg)
{
    if (quiet())
        return;
    std::string line;
    line.reserve(std::char_traits<char>::length(prefix) + msg.size() + 3);
    line += prefix;
    line += ": ";
    line += msg;
    line += '\n';
    std::fputs(line.c_str(), stderr);
}

} // namespace

void
warnImpl(const std::string &msg)
{
    emitLine("warn", msg);
}

void
informImpl(const std::string &msg)
{
    emitLine("info", msg);
}

} // namespace detail

void
rawWrite(int fd, const char *buf, std::size_t len)
{
    const int saved_errno = errno;
    while (len > 0) {
        const ssize_t n = ::write(fd, buf, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // Nothing safe to do about a failing fd here.
        }
        buf += n;
        len -= static_cast<std::size_t>(n);
    }
    errno = saved_errno;
}

} // namespace dfault
