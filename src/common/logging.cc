#include "common/logging.hh"

#include <atomic>
#include <cstdio>

namespace dfault {
namespace detail {

namespace {
std::atomic<bool> g_quiet{false};
} // namespace

void
setQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return g_quiet.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace dfault
