/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator draw from Rng so that every
 * experiment is reproducible from a single master seed. The generator is
 * xoshiro256** seeded through SplitMix64, which is fast, high quality and
 * trivially forkable: child streams derived with fork() are statistically
 * independent of the parent.
 */

#ifndef DFAULT_COMMON_RNG_HH
#define DFAULT_COMMON_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

namespace dfault {

/** SplitMix64 step; used for seeding and cheap hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of two values; used to derive per-object seeds. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    return splitMix64(s);
}

/** FNV-1a 64-bit offset basis. */
constexpr std::uint64_t kFnvOffset64 = 1469598103934665603ULL;

/**
 * FNV-1a 64-bit hash of @p bytes folded into @p basis. Chain calls by
 * passing the previous result as the basis; used for config digests,
 * fault-schedule keys and manifest stats digests.
 */
constexpr std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t basis = kFnvOffset64)
{
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    for (const char c : bytes) {
        basis ^= static_cast<unsigned char>(c);
        basis *= kPrime;
    }
    return basis;
}

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * Not thread safe; fork() independent streams for concurrent use.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** UniformRandomBitGenerator interface. */
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Derive an independent child stream keyed by @p key. */
    Rng fork(std::uint64_t key);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box-Muller with caching). */
    double normal();

    /** Normal draw with given mean and standard deviation. */
    double normal(double mean, double sigma);

    /** Lognormal draw: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Exponential draw with given rate lambda. @pre lambda > 0. */
    double exponential(double lambda);

    /**
     * Poisson draw with given mean.
     *
     * Uses Knuth's method for small means and a normal approximation
     * (clamped at zero) for large means; adequate for expected-count
     * sampling in the error integrator.
     */
    std::uint64_t poisson(double mean);

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool bernoulli(double p);

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace dfault

#endif // DFAULT_COMMON_RNG_HH
