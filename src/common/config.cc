#include "common/config.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace dfault {

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        DFAULT_FATAL("config key '", key, "' is not a number: '",
                     it->second, "'");
    if (!std::isfinite(v))
        DFAULT_FATAL("config key '", key, "' is not a finite number: '",
                     it->second, "'");
    return v;
}

double
Config::getDoubleIn(const std::string &key, double fallback, double lo,
                    double hi) const
{
    if (!has(key))
        return fallback;
    const double v = getDouble(key, fallback);
    if (v < lo || v > hi)
        DFAULT_FATAL("config key '", key, "' = ", v,
                     " is outside the allowed range [", lo, ", ", hi, "]");
    return v;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        DFAULT_FATAL("config key '", key, "' is not an integer: '",
                     it->second, "'");
    return v;
}

std::int64_t
Config::getIntIn(const std::string &key, std::int64_t fallback,
                 std::int64_t lo, std::int64_t hi) const
{
    if (!has(key))
        return fallback;
    const std::int64_t v = getInt(key, fallback);
    if (v < lo || v > hi)
        DFAULT_FATAL("config key '", key, "' = ", v,
                     " is outside the allowed range [", lo, ", ", hi, "]");
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    DFAULT_FATAL("config key '", key, "' is not a boolean: '", v, "'");
}

std::vector<std::string>
Config::parseArgs(int argc, const char *const *argv)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            positional.push_back(token);
        } else {
            set(token.substr(0, eq), token.substr(eq + 1));
        }
    }
    return positional;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

} // namespace dfault
