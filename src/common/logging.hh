/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() signals an internal invariant
 * violation (a bug in this library) and aborts; fatal() signals a user
 * error (bad configuration, invalid arguments) and exits cleanly with a
 * non-zero status; warn() and inform() report conditions that do not stop
 * the simulation.
 *
 * Async-signal-safety: every helper above formats through
 * std::ostringstream and emits via stdio — both allocate and lock, so
 * NONE of DFAULT_PANIC/FATAL/WARN/INFORM/ASSERT may be called from a
 * signal handler. Code reachable from a handler (see par/shutdown.cc)
 * must instead rawWrite() a buffer that was fully preformatted at
 * install time; rawWrite is a bare write(2) loop with no allocation,
 * no locks, and no errno clobbering.
 */

#ifndef DFAULT_COMMON_LOGGING_HH
#define DFAULT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace dfault {

namespace detail {

/** Concatenate a parameter pack into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Silence or restore warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

} // namespace detail

/**
 * Write a preformatted buffer to a file descriptor with write(2),
 * retrying on partial writes and EINTR. The ONLY output primitive that
 * is async-signal-safe: no allocation, no locks, errno preserved.
 * Callers in signal handlers must pass a buffer composed before the
 * handler was installed (formatting is not handler-safe either).
 */
void rawWrite(int fd, const char *buf, std::size_t len);

/**
 * Abort with a message: something happened that should never happen
 * regardless of what the user does, i.e. a library bug.
 */
#define DFAULT_PANIC(...) \
    ::dfault::detail::panicImpl(__FILE__, __LINE__, \
                                ::dfault::detail::concat(__VA_ARGS__))

/**
 * Exit with a message: the simulation cannot continue due to a condition
 * that is the user's fault (bad configuration, invalid arguments).
 */
#define DFAULT_FATAL(...) \
    ::dfault::detail::fatalImpl(__FILE__, __LINE__, \
                                ::dfault::detail::concat(__VA_ARGS__))

/** Non-fatal warning about questionable but survivable conditions. */
#define DFAULT_WARN(...) \
    ::dfault::detail::warnImpl(::dfault::detail::concat(__VA_ARGS__))

/** Informative status message. */
#define DFAULT_INFORM(...) \
    ::dfault::detail::informImpl(::dfault::detail::concat(__VA_ARGS__))

/** Panic unless a library invariant holds. */
#define DFAULT_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            DFAULT_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace dfault

#endif // DFAULT_COMMON_LOGGING_HH
