/**
 * @file
 * Physical quantities and unit helpers used throughout the simulator.
 *
 * Quantities are plain doubles in SI base units (seconds, volts, degrees
 * Celsius) with user-defined literals for readability, e.g. 64_ms,
 * 1.5_volt, 70.0_celsius. Strong types are deliberately avoided: the
 * quantities cross many module boundaries and the literals keep call
 * sites self-documenting without conversion noise.
 */

#ifndef DFAULT_COMMON_UNITS_HH
#define DFAULT_COMMON_UNITS_HH

#include <cstdint>

namespace dfault {

/** Time in seconds. */
using Seconds = double;
/** Supply voltage in volts. */
using Volts = double;
/** Temperature in degrees Celsius. */
using Celsius = double;
/** Processor cycle count. */
using Cycles = std::uint64_t;
/** Physical byte address in the simulated memory space. */
using Addr = std::uint64_t;

namespace units {

/** Bytes per 64-bit data word; WER is defined per 64-bit word. */
constexpr std::uint64_t bytesPerWord = 8;
/** Data bits per ECC word. */
constexpr int dataBitsPerWord = 64;
/** Check bits per SECDED ECC word (72,64 code). */
constexpr int checkBitsPerWord = 8;
/** Total stored bits per ECC word. */
constexpr int totalBitsPerWord = dataBitsPerWord + checkBitsPerWord;

inline namespace literals {

constexpr Seconds operator""_sec(long double v) { return double(v); }
constexpr Seconds operator""_sec(unsigned long long v) { return double(v); }
constexpr Seconds operator""_ms(long double v) { return double(v) * 1e-3; }
constexpr Seconds operator""_ms(unsigned long long v) { return double(v) * 1e-3; }
constexpr Seconds operator""_us(long double v) { return double(v) * 1e-6; }
constexpr Seconds operator""_us(unsigned long long v) { return double(v) * 1e-6; }
constexpr Seconds operator""_ns(long double v) { return double(v) * 1e-9; }
constexpr Seconds operator""_ns(unsigned long long v) { return double(v) * 1e-9; }
constexpr Seconds operator""_minutes(long double v) { return double(v) * 60.0; }
constexpr Seconds operator""_minutes(unsigned long long v) { return double(v) * 60.0; }

constexpr Volts operator""_volt(long double v) { return double(v); }
constexpr Volts operator""_volt(unsigned long long v) { return double(v); }
constexpr Volts operator""_mvolt(long double v) { return double(v) * 1e-3; }
constexpr Volts operator""_mvolt(unsigned long long v) { return double(v) * 1e-3; }

constexpr Celsius operator""_celsius(long double v) { return double(v); }
constexpr Celsius operator""_celsius(unsigned long long v) { return double(v); }

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

} // namespace literals

} // namespace units

} // namespace dfault

#endif // DFAULT_COMMON_UNITS_HH
