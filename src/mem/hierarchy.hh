/**
 * @file
 * Memory hierarchy: per-core L1 caches, a shared L2, and the four DRAM
 * channels (MCUs) of the simulated X-Gene2 platform.
 *
 * Every program access enters at the L1 of the issuing core; misses
 * propagate to the shared L2 and finally to the MCU that owns the
 * address. Dirty evictions generate DRAM write commands. The hierarchy
 * is the single point where the program's logical access stream turns
 * into the physical DRAM activity (implicit refreshes, aggressor
 * activations) that the error model consumes.
 */

#ifndef DFAULT_MEM_HIERARCHY_HH
#define DFAULT_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "dram/controller.hh"
#include "dram/geometry.hh"
#include "mem/cache.hh"

namespace dfault::mem {

/**
 * The full cache + DRAM-channel assembly.
 *
 * Not thread safe: the simulator interleaves logical threads onto this
 * model from a single host thread.
 */
class MemoryHierarchy
{
  public:
    struct Params
    {
        int cores = 8;
        Cache::Params l1;              ///< per-core, defaults 32 KiB/8-way
        Cache::Params l2;              ///< shared, defaults set in ctor
        dram::Mcu::Params mcu;
    };

    MemoryHierarchy(const dram::Geometry &geometry, const Params &params);
    explicit MemoryHierarchy(const dram::Geometry &geometry);

    /**
     * Perform one access and return its latency in CPU cycles.
     *
     * @param core  issuing core in [0, cores)
     * @param addr  byte address within DRAM capacity
     * @param is_write true for stores
     * @param cycle current cycle of the issuing core (for DRAM timing
     *              and row-statistics bookkeeping)
     */
    Cycles access(int core, Addr addr, bool is_write, Cycles cycle);

    const dram::Geometry &geometry() const { return geometry_; }
    int cores() const { return params_.cores; }

    const CacheCounters &l1Counters(int core) const;
    /** Sum of all per-core L1 counters. */
    CacheCounters l1CountersTotal() const;
    const CacheCounters &l2Counters() const { return l2_->counters(); }
    const dram::Mcu &mcu(int channel) const { return *mcus_.at(channel); }
    int mcuCount() const { return static_cast<int>(mcus_.size()); }

    /** Total DRAM read+write commands across MCUs. */
    std::uint64_t dramCommandsTotal() const;

    /** Invalidate caches and reset all counters and row statistics. */
    void reset();

    /**
     * Publish the counters accumulated since the last reset() into the
     * observability registry under "platform.mem.*" (L1/L2 hit, miss
     * and writeback counters, per-MCU command counters, and derived
     * miss-rate formulas). Counters accumulate across runs.
     */
    void publishStats() const;

  private:
    const dram::Geometry &geometry_;
    Params params_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    std::vector<std::unique_ptr<dram::Mcu>> mcus_;

    Cycles dramAccess(Addr addr, bool is_write, Cycles cycle);
};

} // namespace dfault::mem

#endif // DFAULT_MEM_HIERARCHY_HH
