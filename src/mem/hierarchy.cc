#include "mem/hierarchy.hh"

#include <string>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace dfault::mem {

namespace {

MemoryHierarchy::Params
defaultParams()
{
    MemoryHierarchy::Params p;
    p.l1.sizeBytes = 32 * 1024;
    p.l1.ways = 8;
    p.l1.hitLatency = 2;
    p.l2.sizeBytes = 8 * 1024 * 1024; // shared 8 MiB, X-Gene2-like
    p.l2.ways = 16;
    p.l2.hitLatency = 12;
    return p;
}

} // namespace

MemoryHierarchy::MemoryHierarchy(const dram::Geometry &geometry)
    : MemoryHierarchy(geometry, defaultParams())
{
}

MemoryHierarchy::MemoryHierarchy(const dram::Geometry &geometry,
                                 const Params &params)
    : geometry_(geometry), params_(params)
{
    if (params_.cores <= 0)
        DFAULT_FATAL("hierarchy: cores must be positive");
    l1s_.reserve(params_.cores);
    for (int c = 0; c < params_.cores; ++c)
        l1s_.push_back(std::make_unique<Cache>(params_.l1));
    l2_ = std::make_unique<Cache>(params_.l2);
    mcus_.reserve(geometry_.params().channels);
    for (int ch = 0; ch < geometry_.params().channels; ++ch)
        mcus_.push_back(std::make_unique<dram::Mcu>(geometry_, ch,
                                                    params_.mcu));
}

Cycles
MemoryHierarchy::dramAccess(Addr addr, bool is_write, Cycles cycle)
{
    const dram::WordCoord coord = geometry_.decode(addr);
    return mcus_[coord.channel]->access(coord, is_write, cycle);
}

Cycles
MemoryHierarchy::access(int core, Addr addr, bool is_write, Cycles cycle)
{
    DFAULT_ASSERT(core >= 0 && core < params_.cores, "core id out of range");

    Cache &l1 = *l1s_[core];
    const auto l1_result = l1.access(addr, is_write);
    Cycles latency = params_.l1.hitLatency;
    if (l1_result.hit)
        return latency;

    // L1 miss: dirty victim is written back into L2.
    if (l1_result.writebackAddr) {
        const auto l2_wb = l2_->access(*l1_result.writebackAddr, true);
        if (l2_wb.writebackAddr)
            dramAccess(*l2_wb.writebackAddr, true, cycle);
    }

    const auto l2_result = l2_->access(addr, is_write);
    latency += params_.l2.hitLatency;
    if (l2_result.hit)
        return latency;

    // L2 miss: dirty L2 victim goes to DRAM, then the demand fill.
    if (l2_result.writebackAddr)
        dramAccess(*l2_result.writebackAddr, true, cycle);

    latency += dramAccess(addr, /*is_write=*/false, cycle);
    return latency;
}

const CacheCounters &
MemoryHierarchy::l1Counters(int core) const
{
    return l1s_.at(core)->counters();
}

CacheCounters
MemoryHierarchy::l1CountersTotal() const
{
    CacheCounters total;
    for (const auto &l1 : l1s_) {
        const auto &c = l1->counters();
        total.readAccesses += c.readAccesses;
        total.writeAccesses += c.writeAccesses;
        total.readMisses += c.readMisses;
        total.writeMisses += c.writeMisses;
        total.writebacks += c.writebacks;
    }
    return total;
}

std::uint64_t
MemoryHierarchy::dramCommandsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &mcu : mcus_)
        total += mcu->counters().totalCmds();
    return total;
}

namespace {

/** Publish one cache level's counters and its derived miss rate. */
void
publishCacheLevel(obs::Registry &reg, const std::string &prefix,
                  const CacheCounters &c)
{
    obs::Counter &hits =
        reg.counter(prefix + ".hits", "cache hits");
    obs::Counter &misses =
        reg.counter(prefix + ".misses", "cache misses");
    hits.inc(c.accesses() - c.misses());
    misses.inc(c.misses());
    reg.counter(prefix + ".read_accesses", "read lookups")
        .inc(c.readAccesses);
    reg.counter(prefix + ".write_accesses", "write lookups")
        .inc(c.writeAccesses);
    reg.counter(prefix + ".writebacks", "dirty lines evicted")
        .inc(c.writebacks);
    reg.formula(
        prefix + ".miss_rate",
        [&hits, &misses] {
            const double accesses = static_cast<double>(hits.value()) +
                                    static_cast<double>(misses.value());
            return accesses > 0.0
                       ? static_cast<double>(misses.value()) / accesses
                       : 0.0;
        },
        "misses / accesses, cumulative");
}

} // namespace

void
MemoryHierarchy::publishStats() const
{
    auto &reg = obs::Registry::instance();
    publishCacheLevel(reg, "platform.mem.l1", l1CountersTotal());
    publishCacheLevel(reg, "platform.mem.l2", l2_->counters());
    for (const auto &mcu : mcus_) {
        const auto &c = mcu->counters();
        const std::string p =
            "platform.mem.mcu." + std::to_string(mcu->channel()) + ".";
        reg.counter(p + "read_cmds", "DRAM read commands")
            .inc(c.readCmds);
        reg.counter(p + "write_cmds", "DRAM write commands")
            .inc(c.writeCmds);
        reg.counter(p + "activations", "row activations (ACT)")
            .inc(c.activations);
        reg.counter(p + "precharges", "row precharges (PRE)")
            .inc(c.precharges);
        reg.counter(p + "row_hits", "open-row hits").inc(c.rowHits);
        reg.counter(p + "row_misses", "row-buffer misses")
            .inc(c.rowMisses);
    }
    reg.counter("platform.mem.dram_cmds",
                "DRAM read+write commands, all channels")
        .inc(dramCommandsTotal());
}

void
MemoryHierarchy::reset()
{
    for (auto &l1 : l1s_) {
        l1->flush();
        l1->resetCounters();
    }
    l2_->flush();
    l2_->resetCounters();
    for (auto &mcu : mcus_)
        mcu->reset();
}

} // namespace dfault::mem
