#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace dfault::mem {

double
CacheCounters::missRatio() const
{
    const std::uint64_t total = accesses();
    if (total == 0)
        return 0.0;
    return static_cast<double>(misses()) / static_cast<double>(total);
}

Cache::Cache(const Params &params) : params_(params)
{
    if (params_.lineBytes == 0 || !std::has_single_bit(params_.lineBytes))
        DFAULT_FATAL("cache: lineBytes must be a power of two");
    if (params_.ways == 0)
        DFAULT_FATAL("cache: ways must be positive");
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    if (lines == 0 || lines % params_.ways != 0)
        DFAULT_FATAL("cache: size/line/ways do not divide evenly");
    sets_ = static_cast<std::uint32_t>(lines / params_.ways);
    if (!std::has_single_bit(sets_))
        DFAULT_FATAL("cache: set count must be a power of two, got ", sets_);
    lineShift_ = std::countr_zero(params_.lineBytes);
    lines_.resize(lines);
}

std::uint64_t
Cache::lineNumber(Addr addr) const
{
    return addr >> lineShift_;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    const std::uint64_t line_no = lineNumber(addr);
    const std::uint32_t set = static_cast<std::uint32_t>(line_no) &
                              (sets_ - 1);
    const std::uint64_t tag = line_no >> std::countr_zero(sets_);

    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];

    if (is_write)
        ++counters_.writeAccesses;
    else
        ++counters_.readAccesses;

    ++lruClock_;

    // Hit path.
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = lruClock_;
            line.dirty |= is_write;
            return CacheAccessResult{true, std::nullopt};
        }
    }

    // Miss: pick invalid way or the LRU victim.
    if (is_write)
        ++counters_.writeMisses;
    else
        ++counters_.readMisses;

    Line *victim = base;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    CacheAccessResult result{false, std::nullopt};
    if (victim->valid && victim->dirty) {
        ++counters_.writebacks;
        const std::uint64_t victim_line =
            (victim->tag << std::countr_zero(sets_)) | set;
        result.writebackAddr = victim_line << lineShift_;
    }

    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lruStamp = lruClock_;
    return result;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    lruClock_ = 0;
}

void
Cache::resetCounters()
{
    counters_ = CacheCounters{};
}

} // namespace dfault::mem
