/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The cache hierarchy decides which program accesses reach DRAM: a hit
 * implies no DRAM activity (no implicit refresh, no interference), a
 * miss triggers a line fill and possibly a dirty writeback. The paper's
 * feature set includes L1/L2 access and miss rates, which this model
 * exports.
 */

#ifndef DFAULT_MEM_CACHE_HH
#define DFAULT_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hh"

namespace dfault::mem {

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Address of the evicted dirty line, if any. */
    std::optional<Addr> writebackAddr;
};

/** Aggregate cache counters (exported as program features). */
struct CacheCounters
{
    std::uint64_t readAccesses = 0;
    std::uint64_t writeAccesses = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t accesses() const { return readAccesses + writeAccesses; }
    std::uint64_t misses() const { return readMisses + writeMisses; }
    double missRatio() const;
};

/**
 * Write-back, write-allocate set-associative cache with true-LRU
 * replacement per set.
 */
class Cache
{
  public:
    struct Params
    {
        std::uint64_t sizeBytes = 32 * 1024;
        std::uint32_t lineBytes = 64;
        std::uint32_t ways = 8;
        Cycles hitLatency = 2;
    };

    explicit Cache(const Params &params);

    const Params &params() const { return params_; }
    const CacheCounters &counters() const { return counters_; }

    /**
     * Look up @p addr; on a miss the line is installed (write-allocate)
     * and the LRU victim evicted.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Invalidate everything and clear dirty state (not the counters). */
    void flush();

    /** Reset counters only. */
    void resetCounters();

    std::uint32_t sets() const { return sets_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    Params params_;
    std::uint32_t sets_;
    int lineShift_;
    std::vector<Line> lines_; ///< sets_ * ways, set-major.
    std::uint64_t lruClock_ = 0;
    CacheCounters counters_;

    std::uint64_t lineNumber(Addr addr) const;
};

} // namespace dfault::mem

#endif // DFAULT_MEM_CACHE_HH
