#include "serve/service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/logging.hh"
#include "fi/injector.hh"
#include "obs/deferral.hh"
#include "obs/events.hh"
#include "par/pool.hh"
#include "serve/journal.hh"

namespace dfault::serve {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** Range-check the tuning once, before the const member is stored. */
Params
validated(Params p)
{
    if (p.queueCapacity < 1)
        DFAULT_FATAL("serve: queueCapacity must be >= 1");
    if (p.budgetPerTick < 1)
        DFAULT_FATAL("serve: budgetPerTick must be >= 1");
    if (p.shards < 1)
        DFAULT_FATAL("serve: shards must be >= 1");
    if (p.maxRetries < 0)
        DFAULT_FATAL("serve: maxRetries must be >= 0");
    const BreakerParams &b = p.breaker;
    if (b.consecutiveFailures < 1 || b.errorRateWindow < 1 ||
        b.cooldownTicks < 1 || b.halfOpenProbes < 1)
        DFAULT_FATAL("serve: breaker thresholds must be >= 1");
    if (!(b.errorRateThreshold > 0.0) || !(b.errorRateThreshold <= 1.0))
        DFAULT_FATAL("serve: breaker errorRateThreshold must be in (0,1]");
    return p;
}

std::uint64_t CounterBlock::*
shedField(Priority p)
{
    switch (p) {
    case Priority::Critical:
        return &CounterBlock::shedCritical;
    case Priority::Health:
        return &CounterBlock::shedHealth;
    case Priority::Bulk:
        return &CounterBlock::shedBulk;
    }
    return &CounterBlock::shedBulk;
}

} // namespace

const char *
priorityName(Priority p)
{
    switch (p) {
    case Priority::Critical:
        return "critical";
    case Priority::Health:
        return "health";
    case Priority::Bulk:
        return "bulk";
    }
    return "?";
}

const char *
dispositionName(Disposition d)
{
    switch (d) {
    case Disposition::Served:
        return "served";
    case Disposition::Degraded:
        return "degraded";
    case Disposition::Shed:
        return "shed";
    }
    return "?";
}

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half_open";
    }
    return "?";
}

PredictionService::PredictionService(const ml::Regressor &primary,
                                     const Params &params,
                                     const ml::Regressor *fallback)
    : primary_(primary), fallback_(fallback), params_(validated(params)),
      registry_(params.registry != nullptr ? *params.registry
                                           : obs::Registry::instance()),
      queues_(kPriorityCount), breakers_(params_.shards),
      // Counter names omit _total (the OpenMetrics exporter appends
      // it): these export as serve_submitted_total, serve_shed_total...
      submitted_(registry_.counter("serve.submitted",
                                   "prediction requests submitted")),
      served_(registry_.counter("serve.served",
                                "requests answered by the primary model")),
      degraded_(registry_.counter(
          "serve.degraded",
          "requests answered from the degraded path (LKG / fallback)")),
      shed_(registry_.counter("serve.shed",
                              "requests shed (admission or eviction)")),
      breakerOpened_(registry_.counter("serve.breaker.opened",
                                       "circuit breaker open transitions")),
      breakerHalfOpened_(
          registry_.counter("serve.breaker.half_open",
                            "circuit breaker half-open transitions")),
      breakerClosed_(registry_.counter(
          "serve.breaker.closed",
          "circuit breaker recoveries (half-open -> closed)")),
      ticksTotal_(registry_.counter("serve.ticks", "service ticks run")),
      queueDepthGauge_(registry_.gauge(
          "serve.live.queue_depth",
          "queued requests right now (live, digest-excluded)"))
{
    for (int c = 0; c < kPriorityCount; ++c) {
        const std::string name(priorityName(static_cast<Priority>(c)));
        shedByPriority_[c] = &registry_.counter(
            "serve.shed." + name, "requests shed in the " + name +
                                      " priority class");
        latency_[c] = &registry_.histogram(
            "serve.latency_ns." + name,
            "primary predict latency for " + name +
                " requests, nanoseconds");
    }
    breakerGauges_.reserve(breakers_.size());
    for (std::size_t s = 0; s < breakers_.size(); ++s)
        breakerGauges_.push_back(&registry_.gauge(
            "serve.live.breaker_state.shard" + std::to_string(s),
            "breaker state: 0 closed, 1 open, 2 half-open (live)"));
    if (!params_.journalDir.empty())
        restoreFromJournal();
}

PredictionService::~PredictionService() = default;

void
PredictionService::bumpLocked(std::uint64_t CounterBlock::*field)
{
    if (journal_ != nullptr) {
        ++(journal_->delta.*field);
        ++(journal_->total.*field);
    }
}

void
PredictionService::restoreFromJournal()
{
    journal_ = std::make_unique<JournalState>();
    journal_->wal.open(params_.journalDir, journalConfigDigest(params_),
                       &registry_);
    const WriteAheadJournal::Restored restored = journal_->wal.load();
    if (!restored.any)
        return;

    const auto applyRequests =
        [this](const std::vector<JournalRequest> &requests) {
            for (const JournalRequest &jr : requests) {
                Pending p;
                p.id = jr.id;
                p.key = jr.key;
                p.priority = static_cast<Priority>(jr.priority);
                p.shard = std::clamp(jr.shard, 0, params_.shards - 1);
                p.enqueueTick = jr.enqueueTick;
                p.features = jr.features;
                queues_[jr.priority].push_back(std::move(p));
            }
        };
    const auto applyBreakers =
        [this](const std::vector<JournalBreaker> &journaled) {
            if (journaled.size() != breakers_.size())
                DFAULT_WARN("journal: record carries ", journaled.size(),
                            " breaker shard(s), service has ",
                            breakers_.size(), "; applying the overlap");
            const std::size_t n =
                std::min(journaled.size(), breakers_.size());
            for (std::size_t s = 0; s < n; ++s) {
                const JournalBreaker &jb = journaled[s];
                Breaker &b = breakers_[s];
                b.state = static_cast<BreakerState>(jb.state);
                b.consecutive = jb.consecutive;
                b.window.clear();
                for (char c : jb.window)
                    b.window.push_back(c == '1' ? 1 : 0);
                b.windowFailures = jb.windowFailures;
                b.openedTick = jb.openedTick;
                b.probeSuccesses = jb.probeSuccesses;
            }
        };

    if (restored.hasSnapshot) {
        const JournalSnapshot &snap = restored.snapshot;
        tick_ = snap.tick;
        nextId_ = snap.nextId;
        applyRequests(snap.queued);
        responses_ = snap.responses;
        applyBreakers(snap.breakers);
        for (const auto &[key, value] : snap.lastKnownGood)
            lastKnownGood_[key] = value;
        obs::applyStatOps(snap.statOps, &registry_);
        counterBlockAdd(journal_->total, snap.statOps);
    }
    for (const JournalSegment &seg : restored.segments) {
        tick_ = seg.tick;
        nextId_ = seg.nextId;
        applyRequests(seg.admitted);
        for (const Response &r : seg.responses) {
            // A resolved request leaves the queue; an admission shed
            // was never in it (erase-by-id finds nothing, harmlessly).
            for (auto &q : queues_)
                for (auto qit = q.begin(); qit != q.end(); ++qit)
                    if (qit->id == r.id) {
                        q.erase(qit);
                        break;
                    }
            if (r.disposition == Disposition::Served)
                lastKnownGood_[r.key] = r.prediction;
            responses_.push_back(r);
        }
        applyBreakers(seg.breakers);
        obs::applyStatOps(seg.statOps, &registry_);
        counterBlockAdd(journal_->total, seg.statOps);
    }

    journal_->flushedResponses = responses_.size();
    resumedFromTick_ = static_cast<std::int64_t>(restored.tick);
    for (std::size_t s = 0; s < breakers_.size(); ++s)
        breakerGauges_[s]->set(static_cast<double>(breakers_[s].state));
    updateLiveGaugesLocked();
    DFAULT_INFORM("serve: restored from journal '", params_.journalDir,
                "' to tick ", restored.tick, " (",
                responses_.size(), " response(s), ",
                queueDepthLocked(), " still queued)");
}

void
PredictionService::journalCommitLocked()
{
    if (journal_ == nullptr)
        return;
    const bool snapshotTick =
        params_.snapshotEveryTicks > 0 &&
        tick_ % params_.snapshotEveryTicks == 0;
    const auto captureBreakers = [this]() {
        std::vector<JournalBreaker> out;
        out.reserve(breakers_.size());
        for (const Breaker &b : breakers_) {
            JournalBreaker jb;
            jb.state = static_cast<int>(b.state);
            jb.consecutive = b.consecutive;
            jb.window.reserve(b.window.size());
            for (char c : b.window)
                jb.window.push_back(c != 0 ? '1' : '0');
            jb.windowFailures = b.windowFailures;
            jb.openedTick = b.openedTick;
            jb.probeSuccesses = b.probeSuccesses;
            out.push_back(std::move(jb));
        }
        return out;
    };

    bool ok;
    if (snapshotTick) {
        JournalSnapshot snap;
        snap.tick = tick_;
        snap.nextId = nextId_;
        for (const auto &q : queues_)
            for (const Pending &p : q) {
                JournalRequest jr;
                jr.id = p.id;
                jr.key = p.key;
                jr.priority = static_cast<int>(p.priority);
                jr.shard = p.shard;
                jr.enqueueTick = p.enqueueTick;
                jr.features = p.features;
                snap.queued.push_back(std::move(jr));
            }
        snap.responses = responses_;
        snap.breakers = captureBreakers();
        snap.lastKnownGood.assign(lastKnownGood_.begin(),
                                  lastKnownGood_.end());
        std::sort(snap.lastKnownGood.begin(), snap.lastKnownGood.end());
        snap.statOps = counterBlockOps(journal_->total);
        ok = journal_->wal.writeSnapshot(snap);
    } else {
        JournalSegment seg;
        seg.tick = tick_;
        seg.nextId = nextId_;
        seg.admitted = journal_->admitted;
        seg.responses.assign(responses_.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     journal_->flushedResponses),
                             responses_.end());
        seg.breakers = captureBreakers();
        seg.statOps = counterBlockOps(journal_->delta);
        ok = journal_->wal.writeSegment(seg);
    }
    if (ok) {
        journal_->admitted.clear();
        journal_->delta = CounterBlock{};
        journal_->flushedResponses = responses_.size();
    }
    // On failure the delta stays accumulated: it folds into the next
    // record, and a crash before that resumes from the previous
    // durable tick and re-executes this one deterministically.
}

par::CancelToken
PredictionService::effectiveToken() const
{
    return params_.token.valid() ? params_.token : par::rootCancelToken();
}

std::size_t
PredictionService::queueDepthLocked() const
{
    std::size_t depth = 0;
    for (const auto &q : queues_)
        depth += q.size();
    return depth;
}

void
PredictionService::updateLiveGaugesLocked()
{
    queueDepthGauge_.set(static_cast<double>(queueDepthLocked()));
}

void
PredictionService::shedLocked(Pending &&req, const std::string &reason)
{
    ++shed_;
    ++*shedByPriority_[static_cast<int>(req.priority)];
    bumpLocked(&CounterBlock::shed);
    bumpLocked(shedField(req.priority));
    Response r;
    r.id = req.id;
    r.key = req.key;
    r.priority = req.priority;
    r.shard = req.shard;
    r.disposition = Disposition::Shed;
    r.prediction = kNaN;
    r.reason = reason;
    responses_.push_back(std::move(r));
}

void
PredictionService::degradeLocked(Pending &&req, const std::string &reason)
{
    double prediction = kNaN;
    std::string source;
    const auto lkg = lastKnownGood_.find(req.key);
    if (lkg != lastKnownGood_.end()) {
        prediction = lkg->second;
        source = "last-known-good";
    } else if (fallback_ != nullptr) {
        prediction = fallback_->predict(req.features);
        source = "fallback model";
    } else {
        // No cheap path exists for this key: the request still gets a
        // disposition, just an honest one.
        shedLocked(std::move(req), reason + "; no degraded path");
        return;
    }
    ++degraded_;
    bumpLocked(&CounterBlock::degraded);
    Response r;
    r.id = req.id;
    r.key = req.key;
    r.priority = req.priority;
    r.shard = req.shard;
    r.disposition = Disposition::Degraded;
    r.degraded = true;
    r.prediction = prediction;
    r.reason = reason + " (" + source + ")";
    responses_.push_back(std::move(r));
}

void
PredictionService::serveLocked(Pending &&req, double prediction)
{
    ++served_;
    bumpLocked(&CounterBlock::served);
    lastKnownGood_[req.key] = prediction;
    Response r;
    r.id = req.id;
    r.key = req.key;
    r.priority = req.priority;
    r.shard = req.shard;
    r.disposition = Disposition::Served;
    r.prediction = prediction;
    responses_.push_back(std::move(r));
}

void
PredictionService::transitionLocked(int shard, BreakerState to)
{
    Breaker &b = breakers_[shard];
    const BreakerState from = b.state;
    if (from == to)
        return;
    b.state = to;
    switch (to) {
    case BreakerState::Open:
        b.openedTick = tick_;
        ++breakerOpened_;
        bumpLocked(&CounterBlock::breakerOpened);
        break;
    case BreakerState::HalfOpen:
        b.probeSuccesses = 0;
        ++breakerHalfOpened_;
        bumpLocked(&CounterBlock::breakerHalfOpened);
        break;
    case BreakerState::Closed:
        b.consecutive = 0;
        b.window.clear();
        b.windowFailures = 0;
        ++breakerClosed_;
        bumpLocked(&CounterBlock::breakerClosed);
        break;
    }
    breakerGauges_[shard]->set(static_cast<double>(to));
    auto &sink = obs::EventSink::instance();
    if (sink.enabled()) {
        obs::JsonWriter w;
        w.field("tick", tick_);
        w.field("shard", shard);
        w.field("from", breakerStateName(from));
        w.field("to", breakerStateName(to));
        sink.emit("serve_breaker", w);
    }
}

void
PredictionService::recordOutcomeLocked(Breaker &b, bool failure)
{
    b.window.push_back(failure ? 1 : 0);
    if (failure)
        ++b.windowFailures;
    while (static_cast<int>(b.window.size()) >
           params_.breaker.errorRateWindow) {
        if (b.window.front() != 0)
            --b.windowFailures;
        b.window.pop_front();
    }
}

void
PredictionService::onPrimarySuccessLocked(int shard)
{
    Breaker &b = breakers_[shard];
    switch (b.state) {
    case BreakerState::Closed:
        b.consecutive = 0;
        recordOutcomeLocked(b, false);
        break;
    case BreakerState::HalfOpen:
        if (++b.probeSuccesses >= params_.breaker.halfOpenProbes)
            transitionLocked(shard, BreakerState::Closed);
        break;
    case BreakerState::Open:
        // The breaker opened earlier in this same commit pass; the
        // request had already executed. Nothing to record.
        break;
    }
}

void
PredictionService::onPrimaryFailureLocked(int shard)
{
    Breaker &b = breakers_[shard];
    switch (b.state) {
    case BreakerState::Closed: {
        ++b.consecutive;
        recordOutcomeLocked(b, true);
        const bool rateTrip =
            static_cast<int>(b.window.size()) >=
                params_.breaker.errorRateWindow &&
            static_cast<double>(b.windowFailures) /
                    static_cast<double>(b.window.size()) >=
                params_.breaker.errorRateThreshold;
        if (b.consecutive >= params_.breaker.consecutiveFailures ||
            rateTrip)
            transitionLocked(shard, BreakerState::Open);
        break;
    }
    case BreakerState::HalfOpen:
        // A failed probe reopens immediately and restarts the cooldown.
        transitionLocked(shard, BreakerState::Open);
        break;
    case BreakerState::Open:
        break;
    }
}

std::uint64_t
PredictionService::submit(Request request)
{
    auto &inj = fi::Injector::instance();
    std::lock_guard<std::mutex> lock(mutex_);
    Pending p;
    p.id = nextId_++;
    p.key = request.key;
    p.priority = request.priority;
    p.shard = std::clamp(request.shard, 0, params_.shards - 1);
    p.enqueueTick = tick_;
    p.features = std::move(request.features);
    const std::uint64_t id = p.id;
    ++submitted_;
    bumpLocked(&CounterBlock::submitted);

    const par::CancelToken token = effectiveToken();
    if (token.cancelled()) {
        const std::string reason = token.reason();
        shedLocked(std::move(p), reason.empty()
                                     ? std::string("cancelled")
                                     : "cancelled: " + reason);
        updateLiveGaugesLocked();
        return id;
    }
    if (inj.armed() && inj.shouldFire("serve.reject", id)) {
        shedLocked(std::move(p),
                   "injected admission reject (serve.reject)");
        updateLiveGaugesLocked();
        return id;
    }
    if (queueDepthLocked() >= params_.queueCapacity) {
        // Priority-aware shedding: evict the *newest* request of the
        // least important class that is strictly less important than
        // the arrival. Bulk sheds first; an arrival with nothing less
        // important behind it sheds itself.
        int victim = -1;
        for (int c = kPriorityCount - 1;
             c > static_cast<int>(p.priority); --c)
            if (!queues_[c].empty()) {
                victim = c;
                break;
            }
        if (victim < 0) {
            shedLocked(std::move(p), "queue full");
            updateLiveGaugesLocked();
            return id;
        }
        Pending evicted = std::move(queues_[victim].back());
        queues_[victim].pop_back();
        shedLocked(std::move(evicted),
                   "queue full: evicted by higher-priority arrival");
    }
    if (journal_ != nullptr) {
        JournalRequest jr;
        jr.id = p.id;
        jr.key = p.key;
        jr.priority = static_cast<int>(p.priority);
        jr.shard = p.shard;
        jr.enqueueTick = p.enqueueTick;
        jr.features = p.features;
        journal_->admitted.push_back(std::move(jr));
    }
    queues_[static_cast<int>(p.priority)].push_back(std::move(p));
    updateLiveGaugesLocked();
    return id;
}

std::size_t
PredictionService::tick()
{
    const par::CancelToken token = effectiveToken();
    std::size_t resolved = 0;
    std::vector<Pending> batch;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++tick_;
        ++ticksTotal_;
        bumpLocked(&CounterBlock::ticks);

        if (token.cancelled()) {
            // A cancelled service still honors the disposition
            // contract: every queued request is shed with the cancel
            // reason, never silently dropped.
            const std::string reason = token.reason();
            const std::string text = reason.empty()
                                         ? std::string("cancelled")
                                         : "cancelled: " + reason;
            for (auto &q : queues_)
                while (!q.empty()) {
                    shedLocked(std::move(q.front()), text);
                    q.pop_front();
                    ++resolved;
                }
            updateLiveGaugesLocked();
            journalCommitLocked();
            return resolved;
        }

        // Open breakers whose tick-based cooldown elapsed start
        // probing. Tick counts, not wall clock: replays transition on
        // exactly the same tick.
        for (std::size_t s = 0; s < breakers_.size(); ++s) {
            Breaker &b = breakers_[s];
            if (b.state == BreakerState::Open &&
                tick_ >= b.openedTick +
                             static_cast<std::uint64_t>(
                                 params_.breaker.cooldownTicks))
                transitionLocked(static_cast<int>(s),
                                 BreakerState::HalfOpen);
        }

        // Batch selection: critical first, bulk last, FIFO within a
        // class. Requests behind an open breaker or past their
        // deadline resolve on the cheap path right here, consuming no
        // budget — that is the entire point of degraded mode.
        std::size_t budget = params_.budgetPerTick;
        std::vector<int> probes(breakers_.size(), 0);
        for (int c = 0; c < kPriorityCount; ++c) {
            std::deque<Pending> keep;
            auto &q = queues_[c];
            while (!q.empty()) {
                Pending p = std::move(q.front());
                q.pop_front();
                const Breaker &b = breakers_[p.shard];
                const bool pastDeadline =
                    params_.degradeAfterTicks > 0 &&
                    tick_ - p.enqueueTick >= params_.degradeAfterTicks;
                if (b.state == BreakerState::Open) {
                    degradeLocked(std::move(p), "breaker open");
                    ++resolved;
                } else if (pastDeadline) {
                    degradeLocked(std::move(p), "deadline pressure");
                    ++resolved;
                } else if (b.state == BreakerState::HalfOpen) {
                    if (budget > 0 &&
                        probes[p.shard] <
                            params_.breaker.halfOpenProbes) {
                        ++probes[p.shard];
                        --budget;
                        batch.push_back(std::move(p));
                    } else {
                        keep.push_back(std::move(p));
                    }
                } else if (budget > 0) {
                    --budget;
                    batch.push_back(std::move(p));
                } else {
                    keep.push_back(std::move(p));
                }
            }
            q = std::move(keep);
        }
        updateLiveGaugesLocked();
    }

    // Execute the batch on the pool, outside the service lock, with
    // the existing retry/cancellation/heartbeat machinery. Faults are
    // keyed by the submission id, so the schedule is independent of
    // arrival order and thread count.
    struct SlotResult
    {
        double prediction = 0.0;
        bool ok = false;
        bool cancelled = false;
        std::string error;
    };
    std::vector<SlotResult> results(batch.size());
    if (!batch.empty()) {
        auto &inj = fi::Injector::instance();
        par::ResilienceOptions opts;
        opts.maxRetries = params_.maxRetries;
        opts.failFast = false;
        opts.token = token;
        const auto failures = par::Pool::global().parallelForResilient(
            batch.size(),
            [&](std::size_t i, int attempt) {
                par::heartbeat();
                const Pending &p = batch[i];
                if (inj.armed()) {
                    inj.maybeStall("serve.slow", p.id, attempt);
                    inj.maybeThrow("serve.error", p.id, attempt);
                }
                const auto t0 = std::chrono::steady_clock::now();
                const double prediction = primary_.predict(p.features);
                const double ns =
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                latency_[static_cast<int>(p.priority)]->record(ns);
                if (!std::isfinite(prediction))
                    throw std::runtime_error(
                        "primary model returned a non-finite "
                        "prediction");
                results[i].prediction = prediction;
                results[i].ok = true;
            },
            opts);
        for (const auto &f : failures) {
            results[f.index].ok = false;
            results[f.index].cancelled =
                f.disposition == par::TaskDisposition::Cancelled;
            results[f.index].error = f.error;
        }
    }

    // Commit results, breaker transitions and the LKG cache in
    // request-index order — the order workers finished in is
    // irrelevant, so the state machine replays bit-identically at any
    // thread count.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Pending &p = batch[i];
            SlotResult &r = results[i];
            if (r.ok) {
                onPrimarySuccessLocked(p.shard);
                serveLocked(std::move(p), r.prediction);
            } else if (r.cancelled) {
                shedLocked(std::move(p),
                           r.error.empty()
                               ? std::string("cancelled")
                               : "cancelled: " + r.error);
            } else {
                onPrimaryFailureLocked(p.shard);
                degradeLocked(std::move(p),
                              "primary failure: " + r.error);
            }
            ++resolved;
        }
        updateLiveGaugesLocked();
        // serve.kill models a SIGKILL landing after the in-memory
        // commit but before the tick reaches the journal: the tick is
        // lost and must be re-executed on resume, which is exactly
        // what the kill/resume determinism suite asserts.
        auto &inj = fi::Injector::instance();
        if (inj.armed())
            inj.maybeKill("serve.kill", tick_);
        journalCommitLocked();
    }
    return resolved;
}

std::size_t
PredictionService::drain(std::size_t maxTicks)
{
    std::size_t ticksRun = 0;
    while (queueDepth() > 0 && ticksRun < maxTicks) {
        tick();
        ++ticksRun;
    }
    if (queueDepth() > 0)
        DFAULT_WARN("serve: drain stopped after ", ticksRun,
                    " tick(s) with ", queueDepth(),
                    " request(s) still queued");
    return ticksRun;
}

std::vector<Response>
PredictionService::takeResponses()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (journal_ != nullptr) {
        if (queueDepthLocked() > 0)
            DFAULT_WARN("serve: takeResponses() mid-run on a journaled "
                        "service; the next snapshot's transcript only "
                        "covers responses still held");
        journal_->flushedResponses = 0;
    }
    std::vector<Response> out = std::move(responses_);
    responses_.clear();
    return out;
}

std::size_t
PredictionService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queueDepthLocked();
}

BreakerState
PredictionService::breakerState(int shard) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breakers_[std::clamp(shard, 0, params_.shards - 1)].state;
}

std::optional<double>
PredictionService::lastKnownGood(std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = lastKnownGood_.find(key);
    if (it == lastKnownGood_.end())
        return std::nullopt;
    return it->second;
}

} // namespace dfault::serve
