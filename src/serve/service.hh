/**
 * @file
 * Resilient online prediction service for fleet-scale inference.
 *
 * The AIOps framing of DRAM error prediction (ROADMAP item 2) serves a
 * trained model to an entire datacenter fleet, where overload and
 * partial failure are the steady state, not the exception. This
 * service fronts an ml::Regressor with the production robustness
 * layer that framing requires:
 *
 *  - a *bounded* MPMC request queue with explicit admission control —
 *    when the queue is full a submission is rejected with a reason
 *    (never queued unboundedly, never silently dropped);
 *  - *priority-aware load shedding* — mitigation-critical and
 *    health-check traffic survives pressure; bulk re-scoring sheds
 *    first. A full queue evicts the newest request of the least
 *    important class to make room for a more important arrival;
 *  - a per-shard *circuit breaker* (closed -> open -> half-open)
 *    driven by consecutive-failure and rolling-error-rate thresholds.
 *    Cooldown is measured in service ticks, never wall clock, so a
 *    replayed chaos run transitions on exactly the same tick;
 *  - *degraded-mode fallback* — on an open breaker, deadline
 *    pressure, or an exhausted retry budget, the request is answered
 *    from a cheaper path (the last-known-good cached prediction for
 *    the same key, else a caller-provided fallback model such as a
 *    single-tree forest slice) with degraded=true stamped on the
 *    response.
 *
 * Execution model: the service is *tick-driven and batched*. Callers
 * submit() requests (thread-safe), then tick() selects up to
 * budgetPerTick requests — critical first, bulk last, FIFO within a
 * class — and fans the batch out over par::Pool with the existing
 * retry / cancellation / heartbeat machinery. Results, breaker
 * transitions and the last-known-good cache are then committed in
 * request-index order, so the entire disposition sequence is a pure
 * function of the submission sequence and the armed fault schedule:
 * a faulted serving run reaches bit-identical serve.* counters at any
 * thread count (CI-gated at 1/2/8 threads).
 *
 * Every submission is accounted for exactly once: it ends Served,
 * Degraded, or Shed (with a reason), and the conservation law
 * submitted == served + degraded + shed holds over the counters.
 *
 * Fault points (docs/robustness.md): serve.slow (bounded stall inside
 * the primary predict), serve.error (primary predict throws),
 * serve.reject (admission rejects despite free capacity). All are
 * keyed by the request id, so a chaos schedule is independent of
 * arrival order and thread count.
 *
 * Telemetry: deterministic counters live under serve.* and are part
 * of the manifest digest; cadence-dependent live state (queue depth,
 * breaker state gauges) lives under serve.live.* and is digest- and
 * stats_diff-excluded like ts./slo./live. (docs/serving.md). Breaker
 * transitions emit "serve_breaker" JSONL events with the tick number.
 */

#ifndef DFAULT_SERVE_SERVICE_HH
#define DFAULT_SERVE_SERVICE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/regressor.hh"
#include "obs/stats.hh"
#include "par/cancel.hh"

namespace dfault::serve {

struct CounterBlock;
struct JournalState;

/**
 * Request importance class. Order is shedding order reversed: Bulk
 * sheds first, Critical last (and only when the queue holds nothing
 * less important).
 */
enum class Priority
{
    Critical = 0, ///< mitigation-critical (page offline / refresh boost)
    Health = 1,   ///< health checks and SLO probes
    Bulk = 2      ///< background fleet re-scoring
};

constexpr int kPriorityCount = 3;

/** "critical" / "health" / "bulk". */
const char *priorityName(Priority p);

/** Final disposition of one submission (exactly one per request). */
enum class Disposition
{
    Served,   ///< primary model answered
    Degraded, ///< answered from the cheap path (LKG cache / fallback)
    Shed      ///< rejected or dropped, with a reason; no prediction
};

/** "served" / "degraded" / "shed". */
const char *dispositionName(Disposition d);

/** Circuit breaker state (per shard). */
enum class BreakerState
{
    Closed,  ///< normal service
    Open,    ///< failing; all requests take the degraded path
    HalfOpen ///< cooldown elapsed; probing with a bounded trickle
};

/** "closed" / "open" / "half_open". */
const char *breakerStateName(BreakerState s);

/** One prediction request. */
struct Request
{
    /**
     * Stable identity of the subject (e.g. fleet DIMM index). Keys the
     * last-known-good cache; unrelated to the fault schedule, which
     * uses the submission id.
     */
    std::uint64_t key = 0;
    Priority priority = Priority::Bulk;
    int shard = 0; ///< clamped into [0, shards)
    std::vector<double> features;
};

/** The disposition of one submission. */
struct Response
{
    std::uint64_t id = 0;  ///< submission sequence number
    std::uint64_t key = 0; ///< Request::key
    Priority priority = Priority::Bulk;
    int shard = 0;
    Disposition disposition = Disposition::Shed;
    bool degraded = false;    ///< true iff disposition == Degraded
    double prediction = 0.0;  ///< NaN when shed
    std::string reason;       ///< why shed / why degraded ("" if served)
};

/** Circuit breaker thresholds; all windows and cooldowns in ticks. */
struct BreakerParams
{
    /** Consecutive primary failures on a shard that open its breaker. */
    int consecutiveFailures = 4;

    /**
     * Rolling error-rate trip: with at least errorRateWindow outcomes
     * recorded, a failure fraction >= errorRateThreshold opens the
     * breaker even without a consecutive run.
     */
    double errorRateThreshold = 0.5;
    int errorRateWindow = 16;

    /** Ticks an open breaker waits before probing (half-open). */
    int cooldownTicks = 4;

    /**
     * Requests admitted per tick while half-open. That many
     * consecutive probe successes close the breaker; any probe
     * failure reopens it and restarts the cooldown.
     */
    int halfOpenProbes = 2;
};

/** Service tuning. */
struct Params
{
    /** Queue slots across all priority classes (admission bound). */
    std::size_t queueCapacity = 256;

    /** Primary predictions executed per tick (the service rate). */
    std::size_t budgetPerTick = 64;

    /**
     * Deadline pressure: a request queued for this many ticks is
     * answered from the degraded path instead of waiting for budget.
     * 0 disables (requests wait indefinitely).
     */
    std::uint64_t degradeAfterTicks = 0;

    /** Independent breaker domains; Request::shard selects one. */
    int shards = 1;

    /** Retries per request before it falls to the degraded path. */
    int maxRetries = 1;

    BreakerParams breaker;

    /** Cancellation source; invalid falls back to rootCancelToken(). */
    par::CancelToken token;

    /** Stats destination; nullptr selects Registry::instance(). */
    obs::Registry *registry = nullptr;

    /**
     * Directory for the write-ahead journal (serve/journal.hh); ""
     * disables durability. A non-empty directory restores the service
     * to its last durable tick at construction and appends one record
     * per tick thereafter.
     */
    std::string journalDir;

    /**
     * Cadence, in ticks, of compacted full-state snapshots (a
     * snapshot replaces the ordinary segment on its tick). Excluded
     * from the journal config digest, like the thread count: it
     * cannot change results. 0 disables snapshots (segments only).
     */
    std::uint64_t snapshotEveryTicks = 32;

    /**
     * Caller-provided configuration entropy folded into the journal
     * config digest — hash the traffic/workload knobs that determine
     * the submission sequence into this. A journal written under a
     * different digest is quarantined and the service starts fresh,
     * never silently replays.
     */
    std::uint64_t journalSalt = 0;
};

/** See file comment. */
class PredictionService
{
  public:
    /**
     * @param primary   the trained model (not owned; must outlive the
     *                  service and be safe for concurrent predict()).
     * @param fallback  optional cheap model for the degraded path
     *                  (e.g. ml::ForestSliceRegressor); nullptr means
     *                  only the last-known-good cache can degrade.
     */
    PredictionService(const ml::Regressor &primary, const Params &params,
                      const ml::Regressor *fallback = nullptr);
    ~PredictionService();

    PredictionService(const PredictionService &) = delete;
    PredictionService &operator=(const PredictionService &) = delete;

    /**
     * Submit one request. Thread-safe. Admission control runs here:
     * the request is either queued, or immediately shed (queue full
     * with nothing less important to evict, injected serve.reject, or
     * cancelled token) — in which case its Shed response is already
     * waiting in takeResponses(). Returns the submission id.
     */
    std::uint64_t submit(Request request);

    /**
     * Run one service cycle: advance breaker cooldowns, degrade
     * requests past their deadline or behind an open breaker, select
     * up to budgetPerTick requests (priority order, half-open shards
     * capped at halfOpenProbes), execute them on par::Pool, and
     * commit results + breaker transitions in request order. Returns
     * the number of requests resolved this tick. Not reentrant; call
     * from one driver thread (submissions may race freely).
     */
    std::size_t tick();

    /**
     * tick() until the queue is empty (or @p maxTicks elapse, or the
     * cancel token fires — a cancelled tick sheds every queued
     * request, so the queue still empties). Returns ticks run.
     */
    std::size_t drain(std::size_t maxTicks = 1000000);

    /** Move out every response accumulated so far, in decision order. */
    std::vector<Response> takeResponses();

    std::size_t queueDepth() const;
    BreakerState breakerState(int shard) const;
    std::uint64_t ticks() const { return tick_; }

    /** Last-known-good cached prediction for @p key, if any. */
    std::optional<double> lastKnownGood(std::uint64_t key) const;

    /**
     * Tick this service was restored to from Params::journalDir, or
     * -1 when it started fresh (no journal, or nothing durable in
     * it). Drivers skip the work of ticks <= this on resume; the
     * harness records it as the manifest's resumed_from_tick.
     */
    std::int64_t resumedFromTick() const { return resumedFromTick_; }

  private:
    struct Pending
    {
        std::uint64_t id = 0;
        std::uint64_t key = 0;
        Priority priority = Priority::Bulk;
        int shard = 0;
        std::uint64_t enqueueTick = 0;
        std::vector<double> features;
    };

    struct Breaker
    {
        BreakerState state = BreakerState::Closed;
        int consecutive = 0;            ///< consecutive failures (closed)
        std::deque<char> window;        ///< rolling outcomes, 1 = failure
        int windowFailures = 0;
        std::uint64_t openedTick = 0;   ///< tick of the last open
        int probeSuccesses = 0;         ///< consecutive successes half-open
    };

    // All private helpers assume mutex_ is held.
    void shedLocked(Pending &&req, const std::string &reason);
    void degradeLocked(Pending &&req, const std::string &reason);
    void serveLocked(Pending &&req, double prediction);
    void transitionLocked(int shard, BreakerState to);
    void onPrimarySuccessLocked(int shard);
    void onPrimaryFailureLocked(int shard);
    void recordOutcomeLocked(Breaker &b, bool failure);
    void updateLiveGaugesLocked();
    std::size_t queueDepthLocked() const;
    par::CancelToken effectiveToken() const;
    void bumpLocked(std::uint64_t CounterBlock::*field);
    void journalCommitLocked();
    void restoreFromJournal();

    const ml::Regressor &primary_;
    const ml::Regressor *fallback_;
    const Params params_;
    obs::Registry &registry_;

    mutable std::mutex mutex_;
    /** One FIFO per priority class, indexed by Priority. */
    std::vector<std::deque<Pending>> queues_;
    std::vector<Breaker> breakers_;
    std::vector<Response> responses_;
    std::unordered_map<std::uint64_t, double> lastKnownGood_;
    std::uint64_t nextId_ = 0;
    std::uint64_t tick_ = 0;
    /** Write-ahead journal state; nullptr when journalDir is empty. */
    std::unique_ptr<JournalState> journal_;
    std::int64_t resumedFromTick_ = -1;

    // Deterministic counters (manifest-digested).
    obs::Counter &submitted_;
    obs::Counter &served_;
    obs::Counter &degraded_;
    obs::Counter &shed_;
    obs::Counter *shedByPriority_[kPriorityCount];
    obs::Counter &breakerOpened_;
    obs::Counter &breakerHalfOpened_;
    obs::Counter &breakerClosed_;
    obs::Counter &ticksTotal_;
    // Cadence-dependent live state (serve.live.*, digest-excluded).
    obs::Gauge &queueDepthGauge_;
    std::vector<obs::Gauge *> breakerGauges_;
    // Wall-clock latency per priority (histogram kind: never digested).
    obs::Histogram *latency_[kPriorityCount];
};

} // namespace dfault::serve

#endif // DFAULT_SERVE_SERVICE_HH
