#include "serve/journal.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <optional>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fi/durable.hh"
#include "fi/injector.hh"
#include "obs/json.hh"
#include "obs/stats.hh"

namespace dfault::serve {

namespace {

constexpr int kJournalVersion = 1;

void
hashDouble(std::uint64_t &hash, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g,", v);
    hash = fnv1a64(buf, hash);
}

void
hashU64(std::uint64_t &hash, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",", v);
    hash = fnv1a64(buf, hash);
}

std::string
digestHex(std::uint64_t digest)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
    return buf;
}

/**
 * The serve.* counters a record replays, with the same descriptions
 * the service registers so applyStatOps lands on the same families.
 */
struct CounterField
{
    const char *name;
    const char *description;
    std::uint64_t CounterBlock::*field;
};

constexpr CounterField kCounterFields[] = {
    {"serve.submitted", "prediction requests submitted",
     &CounterBlock::submitted},
    {"serve.served", "requests answered by the primary model",
     &CounterBlock::served},
    {"serve.degraded",
     "requests answered from the degraded path (LKG / fallback)",
     &CounterBlock::degraded},
    {"serve.shed", "requests shed (admission or eviction)",
     &CounterBlock::shed},
    {"serve.shed.critical",
     "requests shed in the critical priority class",
     &CounterBlock::shedCritical},
    {"serve.shed.health", "requests shed in the health priority class",
     &CounterBlock::shedHealth},
    {"serve.shed.bulk", "requests shed in the bulk priority class",
     &CounterBlock::shedBulk},
    {"serve.breaker.opened", "circuit breaker open transitions",
     &CounterBlock::breakerOpened},
    {"serve.breaker.half_open", "circuit breaker half-open transitions",
     &CounterBlock::breakerHalfOpened},
    {"serve.breaker.closed",
     "circuit breaker recoveries (half-open -> closed)",
     &CounterBlock::breakerClosed},
    {"serve.ticks", "service ticks run", &CounterBlock::ticks},
};

std::string
requestJson(const JournalRequest &r)
{
    obs::JsonWriter w;
    w.field("id", r.id);
    w.field("key", r.key);
    w.field("pri", r.priority);
    w.field("shard", r.shard);
    w.field("enq", r.enqueueTick);
    std::string features = "[";
    for (std::size_t i = 0; i < r.features.size(); ++i) {
        if (i > 0)
            features += ',';
        features += obs::jsonNumber(r.features[i]);
    }
    features += ']';
    w.fieldRaw("features", features);
    return w.str();
}

const obs::JsonValue *
requireNumber(const obs::JsonValue &doc, const char *key)
{
    const obs::JsonValue *v = doc.find(key);
    return v != nullptr && v->kind == obs::JsonValue::Kind::Number
               ? v
               : nullptr;
}

bool
u64Field(const obs::JsonValue &doc, const char *key, std::uint64_t &out)
{
    const obs::JsonValue *v = requireNumber(doc, key);
    if (v == nullptr || v->number < 0)
        return false;
    out = static_cast<std::uint64_t>(v->number);
    return true;
}

bool
intFieldIn(const obs::JsonValue &doc, const char *key, int lo, int hi,
           int &out)
{
    const obs::JsonValue *v = requireNumber(doc, key);
    if (v == nullptr)
        return false;
    const int value = static_cast<int>(v->number);
    if (value < lo || value > hi)
        return false;
    out = value;
    return true;
}

bool
requestFromJson(const obs::JsonValue &v, JournalRequest &out)
{
    if (!v.isObject())
        return false;
    JournalRequest r;
    if (!u64Field(v, "id", r.id) || !u64Field(v, "key", r.key) ||
        !intFieldIn(v, "pri", 0, kPriorityCount - 1, r.priority) ||
        !intFieldIn(v, "shard", 0, 1 << 20, r.shard) ||
        !u64Field(v, "enq", r.enqueueTick))
        return false;
    const obs::JsonValue *features = v.find("features");
    if (features == nullptr || !features->isArray())
        return false;
    r.features.reserve(features->array.size());
    for (const obs::JsonValue &f : features->array) {
        if (f.kind != obs::JsonValue::Kind::Number)
            return false;
        r.features.push_back(f.number);
    }
    out = std::move(r);
    return true;
}

std::string
responseJson(const Response &r)
{
    obs::JsonWriter w;
    w.field("id", r.id);
    w.field("key", r.key);
    w.field("pri", static_cast<int>(r.priority));
    w.field("shard", r.shard);
    w.field("disp", static_cast<int>(r.disposition));
    w.field("degraded", r.degraded);
    // jsonNumber writes a shed response's NaN prediction as null; the
    // parser maps it back explicitly.
    w.fieldRaw("prediction", obs::jsonNumber(r.prediction));
    w.field("reason", r.reason);
    return w.str();
}

bool
responseFromJson(const obs::JsonValue &v, Response &out)
{
    if (!v.isObject())
        return false;
    Response r;
    int priority = 0;
    int disposition = 0;
    if (!u64Field(v, "id", r.id) || !u64Field(v, "key", r.key) ||
        !intFieldIn(v, "pri", 0, kPriorityCount - 1, priority) ||
        !intFieldIn(v, "shard", 0, 1 << 20, r.shard) ||
        !intFieldIn(v, "disp", 0, 2, disposition))
        return false;
    r.priority = static_cast<Priority>(priority);
    r.disposition = static_cast<Disposition>(disposition);
    const obs::JsonValue *degraded = v.find("degraded");
    if (degraded == nullptr ||
        degraded->kind != obs::JsonValue::Kind::Bool)
        return false;
    r.degraded = degraded->boolean;
    const obs::JsonValue *prediction = v.find("prediction");
    if (prediction == nullptr)
        return false;
    if (prediction->kind == obs::JsonValue::Kind::Number)
        r.prediction = prediction->number;
    else if (prediction->isNull())
        r.prediction = std::numeric_limits<double>::quiet_NaN();
    else
        return false;
    const obs::JsonValue *reason = v.find("reason");
    if (reason == nullptr || reason->kind != obs::JsonValue::Kind::String)
        return false;
    r.reason = reason->string;
    out = std::move(r);
    return true;
}

std::string
breakerJson(const JournalBreaker &b)
{
    obs::JsonWriter w;
    w.field("state", b.state);
    w.field("consec", b.consecutive);
    w.field("window", b.window);
    w.field("fails", b.windowFailures);
    w.field("opened", b.openedTick);
    w.field("probes", b.probeSuccesses);
    return w.str();
}

bool
breakerFromJson(const obs::JsonValue &v, JournalBreaker &out)
{
    if (!v.isObject())
        return false;
    JournalBreaker b;
    if (!intFieldIn(v, "state", 0, 2, b.state) ||
        !intFieldIn(v, "consec", 0, 1 << 30, b.consecutive) ||
        !intFieldIn(v, "fails", 0, 1 << 30, b.windowFailures) ||
        !u64Field(v, "opened", b.openedTick) ||
        !intFieldIn(v, "probes", 0, 1 << 30, b.probeSuccesses))
        return false;
    const obs::JsonValue *window = v.find("window");
    if (window == nullptr ||
        window->kind != obs::JsonValue::Kind::String)
        return false;
    for (char c : window->string)
        if (c != '0' && c != '1')
            return false;
    b.window = window->string;
    out = std::move(b);
    return true;
}

template <typename T, typename Fn>
std::string
arrayJson(const std::vector<T> &items, Fn &&itemJson)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ',';
        out += itemJson(items[i]);
    }
    out += ']';
    return out;
}

template <typename T, typename Fn>
bool
arrayFromJson(const obs::JsonValue *v, Fn &&itemFromJson,
              std::vector<T> &out)
{
    if (v == nullptr || !v->isArray())
        return false;
    out.clear();
    out.reserve(v->array.size());
    for (const obs::JsonValue &item : v->array) {
        T parsed;
        if (!itemFromJson(item, parsed))
            return false;
        out.push_back(std::move(parsed));
    }
    return true;
}

/** Shared header + body fields of both record kinds. */
void
recordHeader(obs::JsonWriter &w, const char *kind, std::uint64_t tick,
             std::uint64_t nextId, std::uint64_t digest)
{
    w.field("journal_version", kJournalVersion);
    w.field("kind", kind);
    w.field("config_digest", digestHex(digest));
    w.field("tick", tick);
    w.field("next_id", nextId);
}

bool
recordHeaderFromJson(const obs::JsonValue &doc, const char *kind,
                     std::uint64_t digest, std::uint64_t &tick,
                     std::uint64_t &nextId, std::string &error)
{
    const obs::JsonValue *version = requireNumber(doc, "journal_version");
    if (version == nullptr ||
        static_cast<int>(version->number) != kJournalVersion) {
        error = "missing or unsupported journal_version";
        return false;
    }
    const obs::JsonValue *k = doc.find("kind");
    if (k == nullptr || k->kind != obs::JsonValue::Kind::String ||
        k->string != kind) {
        error = std::string("record kind is not '") + kind + "'";
        return false;
    }
    const obs::JsonValue *d = doc.find("config_digest");
    if (d == nullptr || d->kind != obs::JsonValue::Kind::String) {
        error = "missing config_digest";
        return false;
    }
    if (d->string != digestHex(digest)) {
        error = "config digest mismatch (record written by a different "
                "serving configuration): have " +
                d->string + ", want " + digestHex(digest);
        return false;
    }
    if (!u64Field(doc, "tick", tick) || !u64Field(doc, "next_id", nextId)) {
        error = "missing tick/next_id";
        return false;
    }
    return true;
}

/** Tick parsed from `seg-NNNNNNNN.json` / `snap-NNNNNNNN.json`. */
std::optional<std::uint64_t>
tickFromName(const std::string &name, const char *prefix)
{
    const std::string_view pre(prefix);
    if (name.size() != pre.size() + 8 + 5 || !name.starts_with(pre) ||
        !name.ends_with(".json"))
        return std::nullopt;
    std::uint64_t tick = 0;
    for (std::size_t i = pre.size(); i < pre.size() + 8; ++i) {
        if (name[i] < '0' || name[i] > '9')
            return std::nullopt;
        tick = tick * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    return tick;
}

} // namespace

std::vector<obs::StatOp>
counterBlockOps(const CounterBlock &block)
{
    std::vector<obs::StatOp> ops;
    for (const CounterField &f : kCounterFields) {
        const std::uint64_t value = block.*(f.field);
        if (value == 0)
            continue;
        obs::StatOp op;
        op.kind = obs::StatOp::Kind::CounterInc;
        op.name = f.name;
        op.description = f.description;
        op.value = static_cast<double>(value);
        ops.push_back(std::move(op));
    }
    return ops;
}

void
counterBlockAdd(CounterBlock &block, const std::vector<obs::StatOp> &ops)
{
    for (const obs::StatOp &op : ops) {
        if (op.kind != obs::StatOp::Kind::CounterInc)
            continue;
        for (const CounterField &f : kCounterFields)
            if (op.name == f.name) {
                block.*(f.field) += static_cast<std::uint64_t>(op.value);
                break;
            }
    }
}

std::uint64_t
journalConfigDigest(const Params &params)
{
    std::uint64_t hash = kFnvOffset64;
    hash = fnv1a64("dfault-serve-journal-v1,", hash);
    hashU64(hash, params.queueCapacity);
    hashU64(hash, params.budgetPerTick);
    hashU64(hash, params.degradeAfterTicks);
    hashU64(hash, static_cast<std::uint64_t>(params.shards));
    hashU64(hash, static_cast<std::uint64_t>(params.maxRetries));
    const BreakerParams &b = params.breaker;
    hashU64(hash, static_cast<std::uint64_t>(b.consecutiveFailures));
    hashDouble(hash, b.errorRateThreshold);
    hashU64(hash, static_cast<std::uint64_t>(b.errorRateWindow));
    hashU64(hash, static_cast<std::uint64_t>(b.cooldownTicks));
    hashU64(hash, static_cast<std::uint64_t>(b.halfOpenProbes));
    hashU64(hash, params.journalSalt);
    return hash;
}

std::string
journalSegmentJson(const JournalSegment &seg, std::uint64_t digest)
{
    obs::JsonWriter w;
    recordHeader(w, "segment", seg.tick, seg.nextId, digest);
    w.fieldRaw("admitted", arrayJson(seg.admitted, requestJson));
    w.fieldRaw("responses", arrayJson(seg.responses, responseJson));
    w.fieldRaw("breakers", arrayJson(seg.breakers, breakerJson));
    w.fieldRaw("stat_ops", obs::statOpsJson(seg.statOps));
    return w.str();
}

bool
journalSegmentFromJson(const std::string &text, std::uint64_t digest,
                       JournalSegment &out, std::string *error)
{
    const auto fail = [error](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    std::string parse_error;
    const auto doc = obs::jsonParse(text, &parse_error);
    if (!doc)
        return fail("bad JSON: " + parse_error);
    if (!doc->isObject())
        return fail("not a JSON object");

    JournalSegment parsed;
    std::string header_error;
    if (!recordHeaderFromJson(*doc, "segment", digest, parsed.tick,
                              parsed.nextId, header_error))
        return fail(header_error);
    if (!arrayFromJson(doc->find("admitted"), requestFromJson,
                       parsed.admitted))
        return fail("bad admitted array");
    if (!arrayFromJson(doc->find("responses"), responseFromJson,
                       parsed.responses))
        return fail("bad responses array");
    if (!arrayFromJson(doc->find("breakers"), breakerFromJson,
                       parsed.breakers))
        return fail("bad breakers array");
    const obs::JsonValue *ops = doc->find("stat_ops");
    std::string ops_error;
    if (ops == nullptr ||
        !obs::statOpsFromJson(*ops, parsed.statOps, &ops_error))
        return fail("bad stat_ops: " + ops_error);
    out = std::move(parsed);
    return true;
}

std::string
journalSnapshotJson(const JournalSnapshot &snap, std::uint64_t digest)
{
    obs::JsonWriter w;
    recordHeader(w, "snapshot", snap.tick, snap.nextId, digest);
    w.fieldRaw("queued", arrayJson(snap.queued, requestJson));
    w.fieldRaw("responses", arrayJson(snap.responses, responseJson));
    w.fieldRaw("breakers", arrayJson(snap.breakers, breakerJson));
    w.fieldRaw("lkg",
               arrayJson(snap.lastKnownGood,
                         [](const std::pair<std::uint64_t, double> &kv) {
                             return "[" + std::to_string(kv.first) + "," +
                                    obs::jsonNumber(kv.second) + "]";
                         }));
    w.fieldRaw("stat_ops", obs::statOpsJson(snap.statOps));
    return w.str();
}

bool
journalSnapshotFromJson(const std::string &text, std::uint64_t digest,
                        JournalSnapshot &out, std::string *error)
{
    const auto fail = [error](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    std::string parse_error;
    const auto doc = obs::jsonParse(text, &parse_error);
    if (!doc)
        return fail("bad JSON: " + parse_error);
    if (!doc->isObject())
        return fail("not a JSON object");

    JournalSnapshot parsed;
    std::string header_error;
    if (!recordHeaderFromJson(*doc, "snapshot", digest, parsed.tick,
                              parsed.nextId, header_error))
        return fail(header_error);
    if (!arrayFromJson(doc->find("queued"), requestFromJson,
                       parsed.queued))
        return fail("bad queued array");
    if (!arrayFromJson(doc->find("responses"), responseFromJson,
                       parsed.responses))
        return fail("bad responses array");
    if (!arrayFromJson(doc->find("breakers"), breakerFromJson,
                       parsed.breakers))
        return fail("bad breakers array");
    const auto lkgFromJson = [](const obs::JsonValue &v,
                                std::pair<std::uint64_t, double> &kv) {
        if (!v.isArray() || v.array.size() != 2 ||
            v.array[0].kind != obs::JsonValue::Kind::Number ||
            v.array[1].kind != obs::JsonValue::Kind::Number ||
            v.array[0].number < 0)
            return false;
        kv.first = static_cast<std::uint64_t>(v.array[0].number);
        kv.second = v.array[1].number;
        return true;
    };
    if (!arrayFromJson(doc->find("lkg"), lkgFromJson,
                       parsed.lastKnownGood))
        return fail("bad lkg array");
    const obs::JsonValue *ops = doc->find("stat_ops");
    std::string ops_error;
    if (ops == nullptr ||
        !obs::statOpsFromJson(*ops, parsed.statOps, &ops_error))
        return fail("bad stat_ops: " + ops_error);
    out = std::move(parsed);
    return true;
}

void
WriteAheadJournal::open(const std::string &dir, std::uint64_t digest,
                        obs::Registry *registry)
{
    DFAULT_ASSERT(!dir.empty(), "write-ahead journal needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        DFAULT_FATAL("cannot create journal directory '", dir,
                     "': ", ec.message());
    dir_ = dir;
    digest_ = digest;
    registry_ =
        registry != nullptr ? registry : &obs::Registry::instance();
}

std::string
WriteAheadJournal::segmentPath(std::uint64_t tick) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%08" PRIu64 ".json", tick);
    return dir_ + "/" + name;
}

std::string
WriteAheadJournal::snapshotPath(std::uint64_t tick) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "snap-%08" PRIu64 ".json", tick);
    return dir_ + "/" + name;
}

bool
WriteAheadJournal::writeRecord(const std::string &path, std::string body,
                               std::uint64_t tick, bool snapshot)
{
    auto &inj = fi::Injector::instance();
    if (inj.armed() && inj.shouldFire("journal.write", tick)) {
        DFAULT_WARN("journal: injected write failure for tick ", tick,
                    " (journal.write); the tick stays non-durable and "
                    "folds into the next record");
        registry_->counter("journal.write_failures",
                           "journal records that failed to land")
            .inc();
        return false;
    }
    // journal.torn_segment models the write the loader's quarantine
    // path exists for: the process believes the record landed (so it
    // resets its delta), but only half the body survived.
    if (inj.armed() && inj.shouldFire("journal.torn_segment", tick)) {
        DFAULT_WARN("journal: injected torn record for tick ", tick,
                    " (journal.torn_segment)");
        body.resize(body.size() / 2);
    }
    if (!fi::atomicWriteFile(path, body)) {
        DFAULT_WARN("journal: failed to write ", path,
                    "; the tick stays non-durable and folds into the "
                    "next record");
        registry_->counter("journal.write_failures",
                           "journal records that failed to land")
            .inc();
        return false;
    }
    registry_
        ->counter(snapshot ? "journal.snapshots_written"
                           : "journal.segments_written",
                  snapshot ? "compacted snapshots written"
                           : "tick segments written")
        .inc();
    return true;
}

bool
WriteAheadJournal::writeSegment(const JournalSegment &seg)
{
    DFAULT_ASSERT(enabled(), "writeSegment() on a disabled journal");
    return writeRecord(segmentPath(seg.tick),
                       journalSegmentJson(seg, digest_) + "\n", seg.tick,
                       false);
}

bool
WriteAheadJournal::writeSnapshot(const JournalSnapshot &snap)
{
    DFAULT_ASSERT(enabled(), "writeSnapshot() on a disabled journal");
    if (!writeRecord(snapshotPath(snap.tick),
                     journalSnapshotJson(snap, digest_) + "\n", snap.tick,
                     true))
        return false;
    // Keep two snapshots (a torn newest one falls back to the
    // previous), retire everything the older retained one subsumes.
    std::uint64_t prev = 0;
    bool havePrev = false;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file())
            continue;
        const auto tick =
            tickFromName(entry.path().filename().string(), "snap-");
        if (tick && *tick < snap.tick && (!havePrev || *tick > prev)) {
            prev = *tick;
            havePrev = true;
        }
    }
    if (havePrev)
        compact(prev);
    return true;
}

void
WriteAheadJournal::compact(std::uint64_t keepAfterTick)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec)
        return;
    std::vector<std::filesystem::path> retire;
    for (const auto &entry : it) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        const auto segTick = tickFromName(name, "seg-");
        const auto snapTick = tickFromName(name, "snap-");
        if ((segTick && *segTick <= keepAfterTick) ||
            (snapTick && *snapTick < keepAfterTick))
            retire.push_back(entry.path());
    }
    for (const auto &path : retire) {
        std::filesystem::remove(path, ec);
        if (ec)
            DFAULT_WARN("journal: cannot retire ", path.string(), ": ",
                        ec.message());
    }
}

void
WriteAheadJournal::quarantine(const std::string &path,
                              const std::string &reason)
{
    DFAULT_WARN("journal: quarantining ", path, ": ", reason);
    registry_
        ->counter("journal.quarantined_files",
                  "invalid journal records quarantined at restore")
        .inc();
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (ec)
        DFAULT_WARN("journal: cannot rename ", path,
                    " aside: ", ec.message());
}

WriteAheadJournal::Restored
WriteAheadJournal::load()
{
    Restored out;
    DFAULT_ASSERT(enabled(), "load() on a disabled journal");

    std::map<std::uint64_t, std::string> snaps;
    std::map<std::uint64_t, std::string> segs;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec) {
        DFAULT_WARN("journal: cannot list '", dir_, "': ", ec.message());
        return out;
    }
    for (const auto &entry : it) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (const auto tick = tickFromName(name, "snap-"))
            snaps[*tick] = entry.path().string();
        else if (const auto tick2 = tickFromName(name, "seg-"))
            segs[*tick2] = entry.path().string();
    }

    // Newest valid snapshot wins; an invalid one is quarantined and
    // replay must stop *before* its tick even when an older snapshot
    // is usable — the corrupt snapshot was that tick's only record.
    std::uint64_t stopBefore = ~0ULL;
    for (auto sit = snaps.rbegin(); sit != snaps.rend(); ++sit) {
        std::string error;
        const auto body = fi::readFile(sit->second, &error);
        JournalSnapshot snap;
        if (!body ||
            !journalSnapshotFromJson(*body, digest_, snap, &error)) {
            quarantine(sit->second, error);
            stopBefore = sit->first;
            continue;
        }
        if (snap.tick != sit->first) {
            quarantine(sit->second, "tick in body does not match name");
            stopBefore = sit->first;
            continue;
        }
        out.hasSnapshot = true;
        out.snapshot = std::move(snap);
        out.any = true;
        out.tick = sit->first;
        break;
    }

    // Segments after the snapshot, ascending. A missing tick number is
    // benign (that record's write failed and its delta folded into the
    // next one); a present-but-invalid record is data loss and replay
    // stops at the record before it.
    for (const auto &[tick, path] : segs) {
        if (out.hasSnapshot && tick <= out.snapshot.tick)
            continue;
        if (tick >= stopBefore)
            break;
        std::string error;
        const auto body = fi::readFile(path, &error);
        JournalSegment seg;
        if (!body || !journalSegmentFromJson(*body, digest_, seg, &error)) {
            quarantine(path, error);
            break;
        }
        if (seg.tick != tick) {
            quarantine(path, "tick in body does not match name");
            break;
        }
        out.segments.push_back(std::move(seg));
        out.any = true;
        out.tick = tick;
    }

    if (out.any) {
        registry_
            ->counter("journal.replayed_segments",
                      "journal segments replayed at restore")
            .inc(out.segments.size());
        registry_
            ->gauge("journal.restored_tick",
                    "tick the service was restored to")
            .set(static_cast<double>(out.tick));
    }
    return out;
}

} // namespace dfault::serve
