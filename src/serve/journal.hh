/**
 * @file
 * Tick-granular write-ahead journal for serve::PredictionService.
 *
 * The fleet service runs for days; a crashed predictor has to come
 * back without losing answered work or forgetting its view of the
 * fleet (ROADMAP item 2). This module makes the service durable the
 * same way the campaign checkpoint made sweeps durable
 * (core/checkpoint.hh): every committed tick is appended as one
 * atomically-written JSON *segment*, periodically compacted into a
 * full-state *snapshot*, and a restore replays snapshot + segments to
 * the exact pre-crash state — same serve.* counters (via deferred
 * stat-op replay, obs/deferral.hh), same breaker phase, same
 * last-known-good cache, same response transcript.
 *
 * The WAL contract: work whose tick reached the journal is never
 * re-executed; work past the last durable record is lost and
 * deterministically re-executed by the resumed driver. Because the
 * service's disposition sequence is a pure function of the submission
 * sequence (serve/service.hh), a killed-and-resumed run reaches the
 * transcript and stats digest of a run that never died, bit for bit.
 *
 * Record semantics:
 *
 *  - A segment at tick T carries the *delta since the previous durable
 *    record*: requests admitted, responses committed (in commit
 *    order), the post-tick breaker state of every shard, and the
 *    serve.* counter increments as obs::StatOps. Deltas compose, so a
 *    record whose write failed outright (no file lands —
 *    fi::atomicWriteFile never leaves a torn destination) simply
 *    folds into the next record; a *missing* tick number is benign.
 *  - A snapshot at tick T replaces the segment for that tick and
 *    carries absolute state: queued requests, the full transcript,
 *    breakers, the LKG cache, and cumulative counter totals. Writing
 *    one retires every record at or before the *previous* snapshot
 *    (two snapshots are always retained so a torn newest snapshot can
 *    fall back).
 *  - A file that is *present but invalid* — truncated, garbage, or
 *    carrying a different config digest — is data loss: it is
 *    quarantined (renamed `<name>.quarantined`, counted in
 *    journal.quarantined_files) and replay stops at the record before
 *    it. The ticks from there on are re-served by the resumed driver,
 *    never silently replayed from later records.
 *
 * Every record embeds a config digest (journalConfigDigest() over the
 * service tuning plus a caller salt for the traffic configuration);
 * records from a different configuration are quarantined wholesale.
 * Thread count and snapshot cadence are deliberately excluded — they
 * cannot change results, so changing them must not invalidate a
 * journal.
 *
 * Fault points (docs/robustness.md): journal.write (the record write
 * fails, nothing lands), journal.torn_segment (the write "succeeds"
 * but only half the body lands — a torn write surviving a rename,
 * i.e. the case the loader's quarantine path exists for). Both keyed
 * by the record's tick. journal.* stats are digest-excluded like
 * fi.*: a faulted-but-recovered run digest-matches a clean one.
 */

#ifndef DFAULT_SERVE_JOURNAL_HH
#define DFAULT_SERVE_JOURNAL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/deferral.hh"
#include "serve/service.hh"

namespace dfault::obs {
class Registry;
}

namespace dfault::serve {

/** A queued-but-unresolved request, as journaled. */
struct JournalRequest
{
    std::uint64_t id = 0;
    std::uint64_t key = 0;
    int priority = 0; ///< Priority as int
    int shard = 0;
    std::uint64_t enqueueTick = 0;
    std::vector<double> features;
};

/** Post-record circuit-breaker state of one shard, as journaled. */
struct JournalBreaker
{
    int state = 0; ///< BreakerState as int
    int consecutive = 0;
    std::string window; ///< rolling outcomes, oldest first, '1' = failure
    int windowFailures = 0;
    std::uint64_t openedTick = 0;
    int probeSuccesses = 0;
};

/**
 * serve.* counter mutations accumulated between durable records (a
 * delta) or since service birth (a total). Serialized as
 * obs::StatOps so restore replays publication instead of recomputing
 * it, exactly like campaign checkpoint cells.
 */
struct CounterBlock
{
    std::uint64_t submitted = 0;
    std::uint64_t served = 0;
    std::uint64_t degraded = 0;
    std::uint64_t shed = 0;
    std::uint64_t shedCritical = 0;
    std::uint64_t shedHealth = 0;
    std::uint64_t shedBulk = 0;
    std::uint64_t breakerOpened = 0;
    std::uint64_t breakerHalfOpened = 0;
    std::uint64_t breakerClosed = 0;
    std::uint64_t ticks = 0;
};

/** @p block as CounterInc stat-ops (zero fields omitted). */
std::vector<obs::StatOp> counterBlockOps(const CounterBlock &block);

/** Accumulate the serve.* CounterInc ops in @p ops into @p block. */
void counterBlockAdd(CounterBlock &block,
                     const std::vector<obs::StatOp> &ops);

/** One tick's delta since the previous durable record. */
struct JournalSegment
{
    std::uint64_t tick = 0;
    std::uint64_t nextId = 0; ///< submission-id watermark after the tick
    std::vector<JournalRequest> admitted;
    std::vector<Response> responses; ///< in commit order
    std::vector<JournalBreaker> breakers;
    std::vector<obs::StatOp> statOps;
};

/** Absolute service state at one tick (a compacted snapshot). */
struct JournalSnapshot
{
    std::uint64_t tick = 0;
    std::uint64_t nextId = 0;
    std::vector<JournalRequest> queued; ///< FIFO order within each class
    std::vector<Response> responses;    ///< the full transcript so far
    std::vector<JournalBreaker> breakers;
    /** Last-known-good cache, sorted by key for a canonical encoding. */
    std::vector<std::pair<std::uint64_t, double>> lastKnownGood;
    std::vector<obs::StatOp> statOps; ///< cumulative counter totals
};

/**
 * Digest of everything that changes serving *results*: the service
 * tuning plus @p salt (the caller folds its traffic configuration in
 * — fleet_study hashes its workload and serving knobs). Excludes
 * resilience/cadence knobs (journalDir, snapshotEveryTicks, thread
 * count) exactly like sweepConfigDigest does.
 */
std::uint64_t journalConfigDigest(const Params &params);

std::string journalSegmentJson(const JournalSegment &seg,
                               std::uint64_t digest);
bool journalSegmentFromJson(const std::string &text, std::uint64_t digest,
                            JournalSegment &out,
                            std::string *error = nullptr);
std::string journalSnapshotJson(const JournalSnapshot &snap,
                                std::uint64_t digest);
bool journalSnapshotFromJson(const std::string &text, std::uint64_t digest,
                             JournalSnapshot &out,
                             std::string *error = nullptr);

/**
 * The on-disk journal: `seg-NNNNNNNN.json` / `snap-NNNNNNNN.json`
 * (named by tick) under one directory, all writes through
 * fi::atomicWriteFile. Not thread-safe; the owning service calls it
 * under its own lock from the single tick driver.
 */
class WriteAheadJournal
{
  public:
    /**
     * Bind to @p dir (created if missing; fatal when that fails) and
     * pin the config @p digest every record embeds. @p registry
     * receives the journal.* stats (nullptr: the global registry).
     */
    void open(const std::string &dir, std::uint64_t digest,
              obs::Registry *registry = nullptr);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Durably append one tick record. Returns false when the write
     * fails (or journal.write fires): nothing landed, and the caller
     * keeps accumulating the delta into its next record.
     */
    bool writeSegment(const JournalSegment &seg);

    /** As writeSegment, for a compacted snapshot; also retires records
     * at or before the previous snapshot (keeping two snapshots). */
    bool writeSnapshot(const JournalSnapshot &snap);

    /** What load() recovered. */
    struct Restored
    {
        bool any = false; ///< false: nothing usable, start fresh
        std::uint64_t tick = 0; ///< last durable tick
        bool hasSnapshot = false;
        JournalSnapshot snapshot;
        /** Valid segments after the snapshot, ascending tick. */
        std::vector<JournalSegment> segments;
    };

    /**
     * Recover the newest consistent prefix: the newest valid snapshot
     * (invalid ones are quarantined and the next older tried), then
     * every valid segment after it up to — never across — the first
     * invalid record. See the file comment for why replay must stop
     * there rather than skip it.
     */
    Restored load();

    std::string segmentPath(std::uint64_t tick) const;
    std::string snapshotPath(std::uint64_t tick) const;

  private:
    bool writeRecord(const std::string &path, std::string body,
                     std::uint64_t tick, bool snapshot);
    void quarantine(const std::string &path, const std::string &reason);
    void compact(std::uint64_t keepAfterTick);

    std::string dir_;
    std::uint64_t digest_ = 0;
    obs::Registry *registry_ = nullptr;
};

/**
 * Per-service journaling state (owned by PredictionService behind a
 * pointer so service.hh does not depend on this header).
 */
struct JournalState
{
    WriteAheadJournal wal;
    CounterBlock delta;  ///< since the last durable record
    CounterBlock total;  ///< lifetime, including restored history
    std::vector<JournalRequest> admitted; ///< enqueued since last record
    std::size_t flushedResponses = 0; ///< responses_ entries already durable
};

} // namespace dfault::serve

#endif // DFAULT_SERVE_JOURNAL_HH
