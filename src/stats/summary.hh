/**
 * @file
 * Streaming descriptive statistics.
 */

#ifndef DFAULT_STATS_SUMMARY_HH
#define DFAULT_STATS_SUMMARY_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace dfault::stats {

/**
 * Single-pass mean/variance/min/max accumulator (Welford's algorithm).
 *
 * Numerically stable for long streams; O(1) memory.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStats &other);

    /** Number of observations added. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Reset to the empty state. */
    void reset();

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Quantile of a sample using linear interpolation between order
 * statistics (type-7, the numpy default). @p q in [0, 1].
 */
double quantile(std::vector<double> values, double q);

/** Median convenience wrapper around quantile(). */
double median(std::vector<double> values);

} // namespace dfault::stats

#endif // DFAULT_STATS_SUMMARY_HH
