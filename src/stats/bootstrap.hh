/**
 * @file
 * Bootstrap confidence intervals.
 *
 * The paper reports point accuracies; an open-source release should
 * quantify their stability. The percentile bootstrap resamples the
 * per-benchmark errors with replacement and reports the interval the
 * sample mean falls into with the requested confidence.
 */

#ifndef DFAULT_STATS_BOOTSTRAP_HH
#define DFAULT_STATS_BOOTSTRAP_HH

#include <cstdint>
#include <span>

namespace dfault::stats {

/** A two-sided confidence interval for a sample mean. */
struct ConfidenceInterval
{
    double mean = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Percentile-bootstrap confidence interval for the mean of @p sample.
 *
 * @param confidence two-sided level in (0, 1), e.g. 0.95
 * @param resamples  bootstrap replicates
 * @param seed       resampling seed (deterministic)
 */
ConfidenceInterval bootstrapMeanCi(std::span<const double> sample,
                                   double confidence = 0.95,
                                   int resamples = 2000,
                                   std::uint64_t seed = 1337);

} // namespace dfault::stats

#endif // DFAULT_STATS_BOOTSTRAP_HH
