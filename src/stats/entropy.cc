#include "stats/entropy.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfault::stats {

double
shannonEntropy(
    const std::unordered_map<std::uint32_t, std::uint64_t> &counts)
{
    std::uint64_t total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    if (total == 0)
        return 0.0;

    double h = 0.0;
    const double totald = static_cast<double>(total);
    for (const auto &kv : counts) {
        if (kv.second == 0)
            continue;
        const double p = static_cast<double>(kv.second) / totald;
        h -= p * std::log2(p);
    }
    return h;
}

double
shannonEntropy(std::span<const double> probabilities)
{
    double h = 0.0;
    for (const double p : probabilities) {
        if (p <= 0.0)
            continue;
        h -= p * std::log2(p);
    }
    return h;
}

void
bitOneProbabilities(std::span<const std::uint64_t> words,
                    std::span<double> p_one)
{
    DFAULT_ASSERT(p_one.size() == 64, "expected 64 output slots");
    std::fill(p_one.begin(), p_one.end(), 0.0);
    if (words.empty())
        return;
    for (const std::uint64_t w : words) {
        for (int b = 0; b < 64; ++b)
            p_one[b] += static_cast<double>((w >> b) & 1);
    }
    const double n = static_cast<double>(words.size());
    for (auto &p : p_one)
        p /= n;
}

} // namespace dfault::stats
