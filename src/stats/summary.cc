#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dfault::stats {

void
RunningStats::add(double x)
{
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
quantile(std::vector<double> values, double q)
{
    DFAULT_ASSERT(!values.empty(), "quantile of empty sample");
    DFAULT_ASSERT(q >= 0.0 && q <= 1.0, "quantile level out of range");
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

double
median(std::vector<double> values)
{
    return quantile(std::move(values), 0.5);
}

} // namespace dfault::stats
