#include "stats/histogram.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace dfault::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    DFAULT_ASSERT(bins > 0, "histogram needs at least one bin");
    DFAULT_ASSERT(lo < hi, "histogram range inverted");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) // guard against floating rounding at hi_
        idx = counts_.size() - 1;
    ++counts_[idx];
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::vector<double>
Histogram::probabilities() const
{
    std::vector<double> out(counts_.size(), 0.0);
    std::uint64_t in_range = total_ - underflow_ - overflow_;
    if (in_range == 0)
        return out;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out[i] = static_cast<double>(counts_[i]) /
                 static_cast<double>(in_range);
    return out;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : linear_(std::log(lo), std::log(hi), bins)
{
    DFAULT_ASSERT(lo > 0.0, "log histogram needs positive lower bound");
}

void
LogHistogram::add(double x)
{
    if (x <= 0.0) {
        // Map non-positive observations to underflow via a value below lo.
        linear_.add(-std::numeric_limits<double>::infinity());
        return;
    }
    linear_.add(std::log(x));
}

double
LogHistogram::binLow(std::size_t i) const
{
    return std::exp(linear_.binLow(i));
}

double
LogHistogram::binHigh(std::size_t i) const
{
    return std::exp(linear_.binHigh(i));
}

} // namespace dfault::stats
