#include "stats/bootstrap.hh"

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "par/pool.hh"
#include "stats/summary.hh"

namespace dfault::stats {

ConfidenceInterval
bootstrapMeanCi(std::span<const double> sample, double confidence,
                int resamples, std::uint64_t seed)
{
    DFAULT_ASSERT(!sample.empty(), "bootstrap of an empty sample");
    DFAULT_ASSERT(confidence > 0.0 && confidence < 1.0,
                  "confidence level out of (0,1)");
    DFAULT_ASSERT(resamples > 0, "need at least one resample");

    double total = 0.0;
    for (const double v : sample)
        total += v;

    ConfidenceInterval ci;
    ci.mean = total / static_cast<double>(sample.size());

    // Each resample draws from its own RNG stream derived from (seed,
    // resample index), so resamples are independent of scheduling and
    // fan out over the pool; `means` comes back in resample order.
    const std::vector<double> means =
        par::Pool::global().parallelMap<double>(
            static_cast<std::size_t>(resamples), [&](std::size_t r) {
                Rng rng(hashCombine(seed, static_cast<std::uint64_t>(r)));
                double sum = 0.0;
                for (std::size_t i = 0; i < sample.size(); ++i)
                    sum += sample[rng.uniformInt(
                        static_cast<std::uint64_t>(sample.size()))];
                return sum / static_cast<double>(sample.size());
            });

    const double alpha = (1.0 - confidence) / 2.0;
    ci.lo = quantile(means, alpha);
    ci.hi = quantile(means, 1.0 - alpha);
    return ci;
}

} // namespace dfault::stats
