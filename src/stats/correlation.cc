#include "stats/correlation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace dfault::stats {

double
pearson(std::span<const double> x, std::span<const double> y)
{
    DFAULT_ASSERT(x.size() == y.size(), "pearson: length mismatch");
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;

    const double nd = static_cast<double>(n);
    const double mx = std::accumulate(x.begin(), x.end(), 0.0) / nd;
    const double my = std::accumulate(y.begin(), y.end(), 0.0) / nd;

    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
ranksInto(std::span<const double> x, std::vector<std::size_t> &order,
          std::vector<double> &out)
{
    const std::size_t n = x.size();
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });

    out.assign(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        // Find the extent of the tie group starting at i.
        std::size_t j = i + 1;
        while (j < n && x[order[j]] == x[order[i]])
            ++j;
        // Average 1-based rank over the tie group.
        const double avg_rank =
            (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
        for (std::size_t k = i; k < j; ++k)
            out[order[k]] = avg_rank;
        i = j;
    }
}

std::vector<double>
ranks(std::span<const double> x)
{
    std::vector<std::size_t> order;
    std::vector<double> out;
    ranksInto(x, order, out);
    return out;
}

double
spearman(std::span<const double> x, std::span<const double> y)
{
    DFAULT_ASSERT(x.size() == y.size(), "spearman: length mismatch");
    const auto rx = ranks(x);
    const auto ry = ranks(y);
    return pearson(rx, ry);
}

} // namespace dfault::stats
