/**
 * @file
 * Fixed-bin linear and logarithmic histograms.
 *
 * Used to summarize per-row inter-access time distributions and reuse
 * distances without retaining every observation.
 */

#ifndef DFAULT_STATS_HISTOGRAM_HH
#define DFAULT_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace dfault::stats {

/**
 * Histogram over [lo, hi) with uniformly sized bins plus underflow and
 * overflow counters.
 */
class Histogram
{
  public:
    /** @pre bins > 0 and lo < hi. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double x);

    /** Number of bins (excluding under/overflow). */
    std::size_t bins() const { return counts_.size(); }

    /** Count in bin i. */
    std::uint64_t count(std::size_t i) const { return counts_.at(i); }

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Upper edge of bin i. */
    double binHigh(std::size_t i) const { return binLow(i + 1); }

    /** Observations below the range. */
    std::uint64_t underflow() const { return underflow_; }

    /** Observations at or above the upper edge. */
    std::uint64_t overflow() const { return overflow_; }

    /** Total observations including under/overflow. */
    std::uint64_t total() const { return total_; }

    /** Normalized bin probabilities (excluding under/overflow). */
    std::vector<double> probabilities() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Histogram with logarithmically spaced bins over [lo, hi); suitable for
 * quantities spanning many decades such as reuse distances.
 */
class LogHistogram
{
  public:
    /** @pre bins > 0 and 0 < lo < hi. */
    LogHistogram(double lo, double hi, std::size_t bins);

    /** Record one observation (x <= 0 counts as underflow). */
    void add(double x);

    std::size_t bins() const { return linear_.bins(); }
    std::uint64_t count(std::size_t i) const { return linear_.count(i); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;
    std::uint64_t underflow() const { return linear_.underflow(); }
    std::uint64_t overflow() const { return linear_.overflow(); }
    std::uint64_t total() const { return linear_.total(); }

  private:
    Histogram linear_;
};

} // namespace dfault::stats

#endif // DFAULT_STATS_HISTOGRAM_HH
