/**
 * @file
 * Shannon entropy estimators.
 *
 * The paper introduces the data-pattern entropy HDP (Eq. 5): the entropy
 * of the distribution of 32-bit values written to memory by a workload,
 * estimated from sampled write data.
 */

#ifndef DFAULT_STATS_ENTROPY_HH
#define DFAULT_STATS_ENTROPY_HH

#include <cstdint>
#include <span>
#include <unordered_map>

namespace dfault::stats {

/**
 * Shannon entropy in bits of an empirical distribution given as
 * value -> occurrence-count. Zero-count entries are ignored.
 */
double shannonEntropy(
    const std::unordered_map<std::uint32_t, std::uint64_t> &counts);

/** Shannon entropy in bits of an explicit probability vector. */
double shannonEntropy(std::span<const double> probabilities);

/**
 * Per-bit-position probability of a 1 across a set of 64-bit words.
 *
 * Used by the data-pattern vulnerability model: a DRAM cell can only
 * manifest a retention error if the stored bit is the charged state for
 * that cell's true-/anti-cell orientation.
 *
 * @param words sampled 64-bit data words
 * @param p_one output array of 64 probabilities (bit 0 = LSB)
 */
void bitOneProbabilities(std::span<const std::uint64_t> words,
                         std::span<double> p_one);

} // namespace dfault::stats

#endif // DFAULT_STATS_ENTROPY_HH
