/**
 * @file
 * Rank and linear correlation coefficients.
 *
 * The paper uses Spearman's rank correlation (rs) to relate the 249
 * extracted program features to the WER and PUE targets (Fig 10), because
 * it captures both linear and monotonic non-linear relationships.
 */

#ifndef DFAULT_STATS_CORRELATION_HH
#define DFAULT_STATS_CORRELATION_HH

#include <cstddef>
#include <span>
#include <vector>

namespace dfault::stats {

/**
 * Pearson product-moment correlation of two equal-length samples.
 *
 * @return coefficient in [-1, 1]; 0 when either sample is constant.
 */
double pearson(std::span<const double> x, std::span<const double> y);

/**
 * Fractional ranks of a sample with ties assigned their average rank
 * (midrank method), 1-based as in conventional rank statistics.
 */
std::vector<double> ranks(std::span<const double> x);

/**
 * Allocation-free variant of ranks() for hot loops that rank many
 * columns: one O(n log n) argsort into the caller-owned @p order
 * scratch buffer, midranks written to @p out. Both vectors are
 * resized to x.size(); reusing them across calls amortizes the
 * allocations that dominate ranks() on short samples.
 */
void ranksInto(std::span<const double> x,
               std::vector<std::size_t> &order, std::vector<double> &out);

/**
 * Spearman's rank correlation: Pearson correlation of the midranks.
 *
 * @return rs in [-1, 1]; 0 when either sample is constant.
 */
double spearman(std::span<const double> x, std::span<const double> y);

} // namespace dfault::stats

#endif // DFAULT_STATS_CORRELATION_HH
