/**
 * @file
 * Analytic distribution functions used by the retention model.
 *
 * The error integrator needs closed-form tail probabilities (e.g. the
 * probability that a cell's retention time falls below the effective
 * refresh interval) rather than per-cell sampling, so the lognormal and
 * normal CDFs are provided analytically.
 */

#ifndef DFAULT_STATS_DISTRIBUTIONS_HH
#define DFAULT_STATS_DISTRIBUTIONS_HH

namespace dfault::stats {

/** Standard normal cumulative distribution function. */
double normalCdf(double z);

/** Normal CDF with mean @p mu and standard deviation @p sigma. */
double normalCdf(double x, double mu, double sigma);

/**
 * Lognormal CDF: P(X <= x) for X = exp(N(mu, sigma)).
 * Returns 0 for x <= 0.
 */
double lognormalCdf(double x, double mu, double sigma);

/**
 * Inverse standard normal CDF (Acklam's rational approximation,
 * relative error < 1.15e-9). @p p must lie in (0, 1).
 */
double normalQuantile(double p);

/** Inverse lognormal CDF. @p p must lie in (0, 1). */
double lognormalQuantile(double p, double mu, double sigma);

} // namespace dfault::stats

#endif // DFAULT_STATS_DISTRIBUTIONS_HH
