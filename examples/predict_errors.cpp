/**
 * @file
 * Train the workload-aware DRAM error model on a characterization
 * campaign, then predict WER and PUE for a workload the model never
 * saw — in microseconds instead of a 2-hour characterization run.
 *
 * This is the paper's primary use case (Eq. 1):
 *   Merr = M(Ftrs, Dev, TREFP, VDD, TEMPDRAM)
 *
 * Usage: predict_errors [key=value ...]
 *   e.g. predict_errors footprint_mib=8 work_scale=0.5 epochs=60
 */

#include <cstdio>

#include "common/config.hh"
#include "core/dataset_builder.hh"
#include "core/error_model.hh"
#include "features/extractor.hh"
#include "ml/metrics.hh"
#include "sys/platform.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    sys::Platform::Params pp;
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(config.getInt("footprint_mib", 16))
        << 20;
    pp.exec.timeDilation = sys::dilationForFootprint(footprint);
    sys::Platform platform(pp);

    core::CharacterizationCampaign::Params cp;
    cp.workload.footprintBytes = footprint;
    cp.workload.workScale = config.getDouble("work_scale", 1.0);
    cp.integrator.epochs =
        static_cast<int>(config.getInt("epochs", 120));
    core::CharacterizationCampaign campaign(platform, cp);

    // 1. Data collection: characterize the 14-benchmark suite across
    //    the WER operating grid (paper Fig 3, "DRAM characterization").
    std::printf("collecting the training campaign "
                "(14 benchmarks x %zu operating points)...\n",
                core::werOperatingPoints().size());
    const auto measurements = campaign.sweep(
        workloads::standardSuite(), core::werOperatingPoints());

    // 2. Train the per-device KNN model on input set 1 (the paper's
    //    most accurate configuration).
    const auto model = core::DramErrorModel::trainWer(
        measurements, platform.geometry().deviceCount(),
        core::DramErrorModel::Options{});

    // 3. Profile an *unseen* workload (lulesh is not in the training
    //    suite) -- a few seconds, vs hours of characterization.
    const workloads::WorkloadConfig target{"lulesh_o2", 8,
                                           "lulesh(O2)"};
    const auto &profile = features::ProfileCache::instance().get(
        platform, target, cp.workload);

    std::printf("\npredictions for %s (never characterized):\n",
                target.label.c_str());
    std::printf("%-34s %12s %12s\n", "operating point", "predicted",
                "measured");
    for (const dram::OperatingPoint op :
         {dram::OperatingPoint{1.173, dram::kMinVdd, 50.0},
          dram::OperatingPoint{2.283, dram::kMinVdd, 50.0},
          dram::OperatingPoint{2.283, dram::kMinVdd, 60.0}}) {
        const double predicted =
            model.predictWerAggregate(profile, op);
        const core::Measurement actual = campaign.measure(target, op);
        std::printf("%-34s %12.3e %12.3e  (err %.0f%%)\n",
                    op.label().c_str(), predicted, actual.run.wer(),
                    actual.run.wer() > 0.0
                        ? ml::percentageError(actual.run.wer(),
                                              predicted)
                        : 0.0);
    }

    // 4. Per-device prediction: the model is device-specific, as DRAM
    //    reliability varies DIMM-to-DIMM by orders of magnitude.
    const dram::OperatingPoint op{2.283, dram::kMinVdd, 60.0};
    std::printf("\nper-device WER predictions at %s:\n",
                op.label().c_str());
    for (int d = 0; d < platform.geometry().deviceCount(); ++d)
        std::printf("  %-12s %.3e\n",
                    platform.geometry().deviceAt(d).label().c_str(),
                    model.predictWer(profile, op, d));

    return 0;
}
