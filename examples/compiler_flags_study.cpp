/**
 * @file
 * The implicit effect of compiler optimizations on DRAM reliability
 * (paper §VI-C): the aggressive lulesh build issues fewer compute
 * instructions between memory accesses, raising the DRAM access rate
 * per cycle — and with it the error rate under relaxed refresh.
 *
 * A study like this would take months with physical characterization
 * campaigns; with the behavioural model it takes seconds per build.
 *
 * Usage: compiler_flags_study [key=value ...]
 */

#include <cstdio>

#include "common/config.hh"
#include "core/characterization.hh"
#include "features/extractor.hh"
#include "sys/platform.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    sys::Platform::Params pp;
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(config.getInt("footprint_mib", 16))
        << 20;
    pp.exec.timeDilation = sys::dilationForFootprint(footprint);
    sys::Platform platform(pp);

    core::CharacterizationCampaign::Params cp;
    cp.workload.footprintBytes = footprint;
    cp.workload.workScale = config.getDouble("work_scale", 1.0);
    core::CharacterizationCampaign campaign(platform, cp);

    const dram::OperatingPoint op{0.618, dram::kMinVdd, 70.0};

    std::printf("lulesh under two compiler configurations at %s\n\n",
                op.label().c_str());
    std::printf("%-12s %12s %12s %12s %12s\n", "build", "mem/cycle",
                "IPC", "Treuse(s)", "WER");

    double wer[2] = {0.0, 0.0};
    int i = 0;
    for (const auto &config_w : workloads::extendedSuite()) {
        if (config_w.kernel != "lulesh_o2" &&
            config_w.kernel != "lulesh_f")
            continue;
        const core::Measurement m = campaign.measure(config_w, op);
        std::printf("%-12s %12.4f %12.3f %12.3f %12.3e\n",
                    m.label.c_str(),
                    m.profile->features[features::kMemAccessesPerCycle],
                    m.profile->features[features::kIpc],
                    m.profile->treuse, m.run.wer());
        wer[i++] = m.run.wer();
    }

    if (wer[0] > 0.0) {
        std::printf("\naggressive optimization changes WER by %+.1f%% "
                    "(paper: ~+29%% for -F vs -O2)\n",
                    100.0 * (wer[1] - wer[0]) / wer[0]);
        std::printf(
            "=> compiler flags are an implicit DRAM-reliability knob:\n"
            "   software-level changes shift the error rate without\n"
            "   any hardware modification (paper §VI-C).\n");
    }
    return 0;
}
