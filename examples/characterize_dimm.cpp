/**
 * @file
 * Characterize the DIMM population of a server: run one workload under
 * a relaxed refresh period on the thermally controlled testbed and
 * break the observed errors down by DIMM/rank — the workflow behind
 * the paper's Fig 8 and the basis for retention-aware DIMM binning.
 *
 * Usage: characterize_dimm [workload=<kernel>] [trefp_s=2.283]
 *                          [temp_c=50] [key=value ...]
 */

#include <cstdio>

#include "common/config.hh"
#include "core/characterization.hh"
#include "dram/error_log.hh"
#include "sys/platform.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    sys::Platform::Params pp;
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(config.getInt("footprint_mib", 16))
        << 20;
    pp.exec.timeDilation = sys::dilationForFootprint(footprint);
    sys::Platform platform(pp);

    core::CharacterizationCampaign::Params cp;
    cp.workload.footprintBytes = footprint;
    cp.workload.workScale = config.getDouble("work_scale", 1.0);
    core::CharacterizationCampaign campaign(platform, cp);

    const std::string kernel = config.getString("workload", "srad");
    const dram::OperatingPoint op{
        config.getDouble("trefp_s", 2.283), dram::kMinVdd,
        config.getDouble("temp_c", 50.0)};
    op.validate();

    std::printf("characterizing '%s' at %s on the thermal testbed...\n",
                kernel.c_str(), op.label().c_str());

    dram::ErrorLog log(platform.geometry());
    const core::Measurement m = campaign.measure(
        {kernel, 8, kernel + "(par)"}, op, /*run_seed=*/1, &log);

    std::printf("\nachieved DIMM temperature: %.1f C (PID-controlled; "
                "target %.1f C)\n",
                m.achieved.temperature, op.temperature);
    if (m.run.crashed) {
        std::printf("run ended with an uncorrectable error after %d "
                    "minutes on %s\n",
                    m.run.crashEpoch,
                    platform.geometry()
                        .deviceAt(m.run.crashDevice)
                        .label()
                        .c_str());
    }

    std::printf("\nper-device breakdown (unique CE words, WER):\n");
    std::printf("%-12s %14s %12s %18s\n", "device", "CE words", "WER",
                "retention scale");
    for (int d = 0; d < platform.geometry().deviceCount(); ++d) {
        const auto id = platform.geometry().deviceAt(d);
        std::printf("%-12s %14.0f %12.3e %18.2f\n", id.label().c_str(),
                    m.run.cePerDevice[d], m.run.werForDevice(d),
                    platform.devices()[d].retentionScale());
    }

    std::printf("\nsampled SLIMpro-style error records (%zu):\n",
                log.records().size());
    int shown = 0;
    for (const auto &rec : log.records()) {
        std::printf("  [%3llu min] %s bank %d row %5u col %3u  %s\n",
                    static_cast<unsigned long long>(rec.epoch),
                    rec.device.label().c_str(), rec.bank, rec.row,
                    rec.column,
                    rec.type == dram::ErrorType::CE   ? "CE"
                    : rec.type == dram::ErrorType::UE ? "UE"
                                                      : "SDC");
        if (++shown == 12) {
            std::printf("  ... (%zu more)\n",
                        log.records().size() - 12);
            break;
        }
    }

    std::printf("\naggregate WER: %.3e per 64-bit word\n", m.run.wer());
    return 0;
}
