/**
 * @file
 * Quickstart: profile one workload, characterize it at a relaxed DRAM
 * operating point, and compare against the random data-pattern
 * micro-benchmark — the 60-second tour of the DFault API.
 *
 * Usage: quickstart [key=value ...]
 *   e.g. quickstart campaign.epochs=60 workload.footprint_mib=8
 */

#include <cstdio>

#include "common/config.hh"
#include "core/characterization.hh"
#include "dram/operating_point.hh"
#include "sys/platform.hh"
#include "workloads/registry.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    // 1. Assemble the simulated server: 8 ARMv8-like cores, 4 DDR3
    //    channels, 4 DIMMs x 2 ranks with per-device manufacturing
    //    variation, and the thermally controlled testbed.
    sys::Platform platform;

    // 2. A characterization campaign couples the platform with the
    //    error integrator (the simulated 2-hour measurement runs).
    core::CharacterizationCampaign::Params params;
    params.workload.footprintBytes =
        static_cast<std::uint64_t>(
            config.getInt("workload.footprint_mib", 16))
        << 20;
    params.integrator.epochs =
        static_cast<int>(config.getInt("campaign.epochs", 120));
    core::CharacterizationCampaign campaign(platform, params);

    // 3. Characterize workloads under a relaxed refresh period and
    //    lowered supply voltage at 50 C (paper Fig 4's setting; at
    //    70 C with this TREFP every benchmark crashes with a UE).
    const dram::OperatingPoint op{2.283, dram::kMinVdd, 50.0};

    std::printf("operating point: %s\n\n", op.label().c_str());
    std::printf("%-14s %-8s %-12s %-10s %-10s %s\n", "workload",
                "threads", "WER", "Treuse(s)", "HDP(bits)", "outcome");

    for (const workloads::WorkloadConfig &config :
         {workloads::WorkloadConfig{"memcached", 8, "memcached"},
          workloads::WorkloadConfig{"backprop", 8, "backprop(par)"},
          workloads::WorkloadConfig{"random", 8, "random"}}) {
        const core::Measurement m = campaign.measure(config, op);
        std::printf("%-14s %-8d %-12.3e %-10.3f %-10.2f %s\n",
                    m.label.c_str(), m.threads, m.run.wer(),
                    m.profile->treuse, m.profile->entropy,
                    m.run.crashed ? "UE (crash)" : "completed");
    }

    std::printf("\nThe workload-dependent spread above is what the "
                "paper's model predicts\nfrom program features alone; "
                "see examples/predict_errors.cpp.\n");
    return 0;
}
