/**
 * @file
 * Energy-vs-reliability advisor: the operational use case the paper
 * motivates (§I: guiding the adjustment of DRAM circuit parameters for
 * saving energy, and §VII: predictive maintenance).
 *
 * Refresh operations cost energy proportional to the refresh rate; a
 * longer TREFP saves power but manifests errors. Given a target
 * workload, the advisor sweeps TREFP with the trained model and
 * reports, per temperature, the longest refresh period whose predicted
 * WER stays under a reliability budget -- per DIMM/rank, because the
 * weakest device gates the setting.
 *
 * Usage: maintenance_advisor [workload=<kernel>] [budget=1e-8]
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "core/dataset_builder.hh"
#include "core/error_model.hh"
#include "features/extractor.hh"
#include "sys/platform.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    sys::Platform::Params pp;
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(config.getInt("footprint_mib", 16))
        << 20;
    pp.exec.timeDilation = sys::dilationForFootprint(footprint);
    sys::Platform platform(pp);

    core::CharacterizationCampaign::Params cp;
    cp.workload.footprintBytes = footprint;
    cp.workload.workScale = config.getDouble("work_scale", 1.0);
    core::CharacterizationCampaign campaign(platform, cp);

    // One-time investment: the training campaign.
    std::printf("training the error model on the standard suite...\n");
    const auto measurements = campaign.sweep(
        workloads::standardSuite(), core::werOperatingPoints());
    const auto model = core::DramErrorModel::trainWer(
        measurements, platform.geometry().deviceCount(),
        core::DramErrorModel::Options{});

    const std::string kernel = config.getString("workload", "memcached");
    const double budget = config.getDouble("budget", 1e-8);
    const auto &profile = features::ProfileCache::instance().get(
        platform, {kernel, 8, kernel}, cp.workload);

    // Refresh energy scales with the refresh rate: savings relative to
    // the nominal 64 ms period.
    const auto refresh_saving = [](Seconds trefp) {
        return 100.0 * (1.0 - dram::kNominalTrefp / trefp);
    };

    std::printf("\nadvisor for workload '%s', WER budget %.1e per "
                "64-bit word:\n",
                kernel.c_str(), budget);
    std::printf("(refresh-energy saving vs nominal 64 ms is ~100%% at "
                "these periods;\n the knob is how far TREFP can go "
                "before reliability gives out)\n\n");

    const std::vector<Seconds> sweep{0.2,   0.4,   0.618, 0.9,
                                     1.173, 1.45,  1.727, 2.0,
                                     2.283};
    for (const Celsius temp : {50.0, 60.0}) {
        std::printf("DIMM temperature %.0f C:\n", temp);
        std::printf("  %-10s %14s %14s %10s\n", "TREFP(s)",
                    "worst-dev WER", "aggregate WER", "within?");
        Seconds best = 0.0;
        for (const Seconds trefp : sweep) {
            const dram::OperatingPoint op{trefp, dram::kMinVdd, temp};
            double worst = 0.0;
            for (int d = 0; d < platform.geometry().deviceCount(); ++d)
                worst = std::max(worst,
                                 model.predictWer(profile, op, d));
            const double aggregate =
                model.predictWerAggregate(profile, op);
            const bool ok = worst <= budget;
            if (ok)
                best = trefp;
            std::printf("  %-10.3f %14.3e %14.3e %10s\n", trefp,
                        worst, aggregate, ok ? "yes" : "no");
        }
        if (best > 0.0)
            std::printf("  => recommend TREFP = %.3f s "
                        "(refresh energy saving %.1f%% vs nominal)\n\n",
                        best, refresh_saving(best));
        else
            std::printf("  => no relaxed setting meets the budget; "
                        "keep the nominal 64 ms\n\n");
    }

    std::printf("note: recommendations are gated by the *weakest* "
                "device -- DIMM-to-DIMM\nvariation spans orders of "
                "magnitude, so fleet-wide settings must be\n"
                "per-module (paper §V-A, Fig 8).\n");
    return 0;
}
