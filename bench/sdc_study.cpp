/**
 * @file
 * SDC deep-dive: why the paper observed zero silent data corruptions.
 *
 * Part 1 measures the SECDED (72,64) decoder's behaviour under k
 * random bit flips (Monte Carlo through the real codec): 1 flip is
 * always corrected, 2 always detected, and from 3 flips on a fraction
 * aliases onto valid single-bit syndromes and is silently
 * miscorrected — the SDC mechanism of Table I.
 *
 * Part 2 evaluates the expected number of >=3-flip words per 2-hour
 * 8 GiB run across the paper's operating envelope: the per-word flip
 * intensities are so small that triple coincidences are vanishingly
 * rare, which is why no SDC was ever observed.
 */

#include "common/rng.hh"
#include "dram/ecc.hh"
#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("SDC study (part 1)",
                  "SECDED decode outcomes vs injected flip count "
                  "(Monte Carlo, real codec)");

    dram::EccSecded ecc;
    Rng rng(0xecc);
    const int trials = static_cast<int>(
        harness.config().getInt("sdc_trials", 20000));

    std::printf("%-6s %12s %12s %12s\n", "flips", "corrected",
                "detected", "miscorrected");
    for (int flips = 1; flips <= 6; ++flips) {
        int corrected = 0, detected = 0, miscorrected = 0;
        for (int t = 0; t < trials; ++t) {
            const std::uint64_t data = rng.next();
            dram::Codeword word = ecc.encode(data);
            // Choose `flips` distinct bit positions.
            int chosen[6];
            for (int i = 0; i < flips; ++i) {
                bool fresh = true;
                do {
                    chosen[i] = static_cast<int>(
                        rng.uniformInt(std::uint64_t{72}));
                    fresh = true;
                    for (int j = 0; j < i; ++j)
                        fresh = fresh && chosen[j] != chosen[i];
                } while (!fresh);
                dram::EccSecded::flipBit(word, chosen[i]);
            }
            const auto result = ecc.decodeKnownFlips(word, flips, data);
            switch (result.outcome) {
              case dram::EccOutcome::Corrected:
                ++corrected;
                break;
              case dram::EccOutcome::Uncorrectable:
                ++detected;
                break;
              case dram::EccOutcome::Miscorrected:
                ++miscorrected;
                break;
              case dram::EccOutcome::NoError:
                // Only reachable if flips cancelled -- they cannot,
                // positions are distinct.
                break;
            }
        }
        std::printf("%-6d %11.1f%% %11.1f%% %11.1f%%\n", flips,
                    100.0 * corrected / trials, 100.0 * detected / trials,
                    100.0 * miscorrected / trials);
    }

    bench::banner("SDC study (part 2)",
                  "expected >=3-flip words per 2-hour 8 GiB run");
    std::printf("%-34s %16s\n", "operating point", "E[SDC events]");
    const auto &wparams = harness.campaign().params().workload;
    const auto &profile = features::ProfileCache::instance().get(
        harness.platform(), {"srad", 8, "srad(par)"}, wparams);

    for (const dram::OperatingPoint op :
         {dram::OperatingPoint{1.173, dram::kMinVdd, 50.0},
          dram::OperatingPoint{2.283, dram::kMinVdd, 50.0},
          dram::OperatingPoint{2.283, dram::kMinVdd, 60.0},
          dram::OperatingPoint{1.450, dram::kMinVdd, 70.0},
          dram::OperatingPoint{2.283, dram::kMinVdd, 70.0}}) {
        const auto run = harness.campaign().integrator().run(
            profile, op, harness.platform().geometry(),
            harness.platform().devices());
        std::printf("%-34s %16.3e%s\n", op.label().c_str(),
                    run.expectedSdc,
                    run.crashed ? "  (run crashes with a UE first)"
                                : "");
    }

    bench::rule();
    std::printf("conclusion: even at the most aggressive point the "
                "expected SDC count per\nrun is <<1 -- consistent with "
                "the paper's zero observed SDCs -- while the\ndecoder "
                "itself WOULD miscorrect a substantial share of >=3-bit "
                "words if they\noccurred (part 1).\n");
    return 0;
}
