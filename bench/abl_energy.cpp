/**
 * @file
 * Energy/reliability trade-off study — the paper's motivation (§I:
 * "guiding the adjustment of the circuit DRAM parameters for saving
 * energy"): per-rank DRAM power versus TREFP and VDD, next to the WER
 * manifested at each point, for one representative workload.
 */

#include "dram/power.hh"
#include "dram/refresh.hh"
#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Energy study",
                  "per-rank DRAM power vs WER across the TREFP/VDD "
                  "grid (srad(par), 50C)");

    const auto &wparams = harness.campaign().params().workload;
    const auto &profile = features::ProfileCache::instance().get(
        harness.platform(), {"srad", 8, "srad(par)"}, wparams);

    // Average activity per rank from the profile.
    double act_rate = 0.0, cmd_rate = 0.0;
    for (const auto &dev : profile.deviceRows)
        for (const auto &row : dev) {
            act_rate += row.activationRate;
            cmd_rate += row.accessRate;
        }
    const int ranks = harness.platform().geometry().deviceCount();
    act_rate /= ranks;
    cmd_rate /= ranks;

    const dram::PowerModel power;
    const dram::RefreshScheduler refresh;

    std::printf("%-10s %-8s %10s %10s %10s %10s %9s %12s\n",
                "TREFP(s)", "VDD(V)", "bg(W)", "refresh(W)", "act(W)",
                "total(W)", "blocked%", "WER");
    for (const Volts vdd : {dram::kNominalVdd, dram::kMinVdd}) {
        for (const Seconds trefp :
             {dram::kNominalTrefp, 0.618, 1.173, 2.283}) {
            const dram::OperatingPoint op{trefp, vdd, 50.0};
            const auto breakdown =
                power.rankPower(op, act_rate, cmd_rate);
            const auto run = harness.campaign().integrator().run(
                profile, op, harness.platform().geometry(),
                harness.platform().devices());
            std::printf("%-10.3f %-8.3f %10.3f %10.3f %10.3f %10.3f"
                        " %8.3f%% %12.3e\n",
                        trefp, vdd, breakdown.background,
                        breakdown.refresh, breakdown.activate,
                        breakdown.total(),
                        100.0 * refresh.blockedFraction(op),
                        run.wer());
        }
    }

    bench::rule();
    const dram::OperatingPoint relaxed{2.283, dram::kMinVdd, 50.0};
    const dram::OperatingPoint nominal{};
    const double saving =
        100.0 *
        (power.rankPower(nominal, act_rate, cmd_rate).total() -
         power.rankPower(relaxed, act_rate, cmd_rate).total()) /
        power.rankPower(nominal, act_rate, cmd_rate).total();
    std::printf("scaling TREFP 64ms -> 2.283s and VDD 1.5 -> 1.428V "
                "cuts rank power by %.1f%%\n(paper §V: \"the maximum "
                "power gain is achieved when both TREFP and VDD are "
                "scaled\"),\nat the WER cost quantified above -- the "
                "trade the error model lets designers tune.\n",
                saving);
    return 0;
}
