/**
 * @file
 * Paper Fig 8: WER per DIMM/rank for every benchmark under
 * TREFP = 2.283 s at 50 C — the DIMM-to-DIMM variation axis. The paper
 * reports a spread of up to 188x across devices (bc:
 * 1.75e-7 on DIMM2/rank0 vs 9.31e-10 on DIMM3/rank1).
 */

#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fig 8",
                  "WER per DIMM/rank at TREFP=2.283s, 1.428V, 50C");

    const dram::OperatingPoint op{2.283, dram::kMinVdd, 50.0};
    const auto suite = workloads::standardSuite();
    const auto &geometry = harness.platform().geometry();

    std::printf("%-14s", "benchmark");
    for (int d = 0; d < geometry.deviceCount(); ++d)
        std::printf(" %11s", geometry.deviceAt(d).label().c_str() + 4);
    std::printf("\n");

    double global_lo = 1e300, global_hi = 0.0;
    std::string lo_where, hi_where;
    for (const auto &config : suite) {
        const core::Measurement m =
            harness.campaign().measure(config, op);
        std::printf("%-14s", config.label.c_str());
        for (int d = 0; d < geometry.deviceCount(); ++d) {
            const double wer = m.run.werForDevice(d);
            std::printf(" %11.2e", wer);
            if (wer > 0.0 && wer < global_lo) {
                global_lo = wer;
                lo_where = config.label + " on " +
                           geometry.deviceAt(d).label();
            }
            if (wer > global_hi) {
                global_hi = wer;
                hi_where = config.label + " on " +
                           geometry.deviceAt(d).label();
            }
        }
        std::printf("\n");
    }

    bench::rule();
    std::printf("device retention scales (simulated hardware):\n ");
    for (const auto &dev : harness.platform().devices())
        std::printf(" %s=%.2f", dev.id().label().c_str(),
                    dev.retentionScale());
    std::printf("\n");
    if (global_hi > 0.0 && global_lo < 1e300)
        std::printf("device spread: %.0fx (%s highest; %s lowest) "
                    "[paper: up to 188x]\n",
                    global_hi / global_lo, hi_where.c_str(),
                    lo_where.c_str());
    return 0;
}
