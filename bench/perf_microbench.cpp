/**
 * @file
 * google-benchmark micro-benchmarks of the library's hot paths: the
 * SECDED codec, the cache and MCU models, feature correlation, the
 * three ML models' prediction latency (the paper's "predict DRAM
 * errors within 300 ms" claim), and one full error-integration run.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/error_integrator.hh"
#include "dram/controller.hh"
#include "dram/ecc.hh"
#include "features/extractor.hh"
#include "mem/cache.hh"
#include "ml/forest.hh"
#include "ml/knn.hh"
#include "ml/svr.hh"
#include "stats/correlation.hh"
#include "sys/platform.hh"

namespace {

using namespace dfault;

void
BM_EccEncode(benchmark::State &state)
{
    dram::EccSecded ecc;
    Rng rng(1);
    std::uint64_t data = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ecc.encode(data));
        data += 0x9e3779b97f4a7c15ULL;
    }
}
BENCHMARK(BM_EccEncode);

void
BM_EccDecodeCorrupted(benchmark::State &state)
{
    dram::EccSecded ecc;
    Rng rng(2);
    dram::Codeword word = ecc.encode(rng.next());
    dram::EccSecded::flipBit(word, 17);
    for (auto _ : state)
        benchmark::DoNotOptimize(ecc.decode(word));
}
BENCHMARK(BM_EccDecodeCorrupted);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache::Params params;
    params.sizeBytes = 32 * 1024;
    mem::Cache cache(params);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.uniformInt(std::uint64_t{1} << 20) * 8,
                         false));
}
BENCHMARK(BM_CacheAccess);

void
BM_McuAccess(benchmark::State &state)
{
    dram::Geometry geometry;
    dram::Mcu mcu(geometry, 0);
    Rng rng(4);
    Cycles cycle = 0;
    for (auto _ : state) {
        dram::WordCoord coord = geometry.decode(
            rng.uniformInt(geometry.capacityBytes() / 8) * 8);
        coord.channel = 0;
        benchmark::DoNotOptimize(mcu.access(coord, false, cycle));
        cycle += 50;
    }
}
BENCHMARK(BM_McuAccess);

void
BM_Spearman249(benchmark::State &state)
{
    Rng rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 140; ++i) { // one campaign's worth of samples
        x.push_back(rng.uniform());
        y.push_back(rng.uniform());
    }
    for (auto _ : state)
        for (int f = 0; f < 249; ++f)
            benchmark::DoNotOptimize(stats::spearman(x, y));
}
BENCHMARK(BM_Spearman249);

/** Training data shaped like one device's WER dataset. */
ml::Matrix
campaignX(std::size_t rows, std::size_t cols)
{
    Rng rng(6);
    ml::Matrix x;
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<double> row;
        for (std::size_t j = 0; j < cols; ++j)
            row.push_back(rng.uniform());
        x.push_back(std::move(row));
    }
    return x;
}

std::vector<double>
campaignY(std::size_t rows)
{
    Rng rng(7);
    std::vector<double> y;
    for (std::size_t i = 0; i < rows; ++i)
        y.push_back(rng.uniform());
    return y;
}

template <typename Model>
void
predictLatency(benchmark::State &state, std::size_t features)
{
    const auto x = campaignX(140, features);
    const auto y = campaignY(140);
    Model model;
    model.fit(x, y);
    const auto query = campaignX(1, features)[0];
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(query));
}

void
BM_KnnPredict_Set1(benchmark::State &state)
{
    predictLatency<ml::KnnRegressor>(state, 7);
}
BENCHMARK(BM_KnnPredict_Set1);

void
BM_KnnPredict_AllFeatures(benchmark::State &state)
{
    predictLatency<ml::KnnRegressor>(state, 252);
}
BENCHMARK(BM_KnnPredict_AllFeatures);

void
BM_SvrPredict_Set1(benchmark::State &state)
{
    predictLatency<ml::SvrRegressor>(state, 7);
}
BENCHMARK(BM_SvrPredict_Set1);

void
BM_RdfPredict_Set1(benchmark::State &state)
{
    predictLatency<ml::RandomForestRegressor>(state, 7);
}
BENCHMARK(BM_RdfPredict_Set1);

void
BM_KnnFit_Set1(benchmark::State &state)
{
    const auto x = campaignX(140, 7);
    const auto y = campaignY(140);
    for (auto _ : state) {
        ml::KnnRegressor model;
        model.fit(x, y);
        benchmark::DoNotOptimize(&model);
    }
}
BENCHMARK(BM_KnnFit_Set1);

void
BM_ErrorIntegratorRun(benchmark::State &state)
{
    static sys::Platform platform([] {
        sys::Platform::Params p;
        p.hierarchy.l2.sizeBytes = 1 << 20;
        p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
        return p;
    }());
    workloads::Workload::Params wp;
    wp.footprintBytes = 2 << 20;
    wp.workScale = 0.5;
    const auto &profile = features::ProfileCache::instance().get(
        platform, {"srad", 8, "srad(par)"}, wp);
    core::ErrorIntegrator integrator;
    const dram::OperatingPoint op{2.283, dram::kMinVdd, 60.0};
    std::uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            integrator.run(profile, op, platform.geometry(),
                           platform.devices(), seed++));
}
BENCHMARK(BM_ErrorIntegratorRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
