/**
 * @file
 * google-benchmark micro-benchmarks of the library's hot paths: the
 * SECDED codec (encode plus the no-error / single-bit-correct /
 * double-bit-detect decode paths), the cache and MCU models, feature
 * correlation (full Spearman and the ranking kernel alone), the three
 * ML models' prediction latency (the paper's "predict DRAM errors
 * within 300 ms" claim), and one full error-integration run.
 *
 * Each kernel benchmark carries extra custom counters alongside
 * google-benchmark's mean time:
 *
 *   p50_ns / p99_ns   per-operation latency quantiles, tail-sampled
 *                     into an obs::Histogram. Sub-100ns kernels are
 *                     sampled in batches (the quantile is then of the
 *                     per-batch mean) so the clock reads don't distort
 *                     the measured loop.
 *   ipc, cache_miss_per_kinstr, branch_miss_per_kinstr
 *                     hardware-counter rates over the benchmark loop
 *                     via perf_event_open; omitted entirely on hosts
 *                     where the syscall is unavailable (VMs,
 *                     perf_event_paranoid), so downstream gates can
 *                     tell "no counters" from "zero misses".
 *
 * tools/bench_compare gates on cpu_time and p99_ns and (advisorily)
 * on the counter rates; refresh bench/BENCH_perf.json after any
 * intentional change here.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "core/error_integrator.hh"
#include "dram/controller.hh"
#include "dram/ecc.hh"
#include "features/extractor.hh"
#include "mem/cache.hh"
#include "ml/forest.hh"
#include "ml/knn.hh"
#include "ml/selection.hh"
#include "ml/svr.hh"
#include "obs/histogram.hh"
#include "obs/perf_counters.hh"
#include "stats/correlation.hh"
#include "sys/platform.hh"

namespace {

using namespace dfault;

/**
 * Per-benchmark latency quantiles + hardware-counter rates. Bracket
 * every iteration with begin()/end(); construction-to-destruction
 * spans the benchmark loop for the counter delta.
 */
class KernelProfile
{
  public:
    /**
     * @p batch iterations are timed as one histogram sample (their
     * mean); use > 1 for kernels cheaper than ~2 clock reads.
     */
    explicit KernelProfile(benchmark::State &state, int batch = 1)
        : state_(state), batch_(static_cast<std::uint64_t>(batch)),
          perfStart_(obs::PerfCounters::threadInstance().sample())
    {
    }

    void begin()
    {
        if (n_ % batch_ == 0)
            t0_ = std::chrono::steady_clock::now();
    }

    void end()
    {
        ++n_;
        if (n_ % batch_ == 0) {
            const double ns =
                std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0_)
                    .count();
            hist_.record(ns / static_cast<double>(batch_));
        }
    }

    ~KernelProfile()
    {
        const obs::PerfSample delta = obs::PerfCounters::threadInstance()
                                          .sample()
                                          .deltaSince(perfStart_);
        if (delta.valid && delta.cycles > 0) {
            const double instr =
                static_cast<double>(delta.instructions);
            state_.counters["ipc"] = benchmark::Counter(
                instr / static_cast<double>(delta.cycles));
            if (instr > 0) {
                state_.counters["cache_miss_per_kinstr"] =
                    benchmark::Counter(
                        static_cast<double>(delta.cacheMisses) / instr *
                        1e3);
                state_.counters["branch_miss_per_kinstr"] =
                    benchmark::Counter(
                        static_cast<double>(delta.branchMisses) / instr *
                        1e3);
            }
        }
        const obs::HistogramSnapshot snap = hist_.snapshot();
        if (snap.count > 0) {
            state_.counters["p50_ns"] = benchmark::Counter(snap.p50());
            state_.counters["p99_ns"] = benchmark::Counter(snap.p99());
        }
    }

  private:
    benchmark::State &state_;
    obs::Histogram hist_;
    std::uint64_t batch_;
    std::uint64_t n_ = 0;
    std::chrono::steady_clock::time_point t0_;
    obs::PerfSample perfStart_;
};

/** Batch size for kernels in the few-ns range. */
constexpr int kTightBatch = 256;

void
BM_EccEncode(benchmark::State &state)
{
    dram::EccSecded ecc;
    Rng rng(1);
    std::uint64_t data = rng.next();
    KernelProfile prof(state, kTightBatch);
    for (auto _ : state) {
        prof.begin();
        benchmark::DoNotOptimize(ecc.encode(data));
        data += 0x9e3779b97f4a7c15ULL;
        prof.end();
    }
}
BENCHMARK(BM_EccEncode);

/**
 * Decode latency across the three SECDED paths the integrator
 * exercises: arg = number of flipped bits (0 = clean syndrome, 1 =
 * single-bit correct, 2 = double-bit detect).
 */
void
BM_EccDecode(benchmark::State &state)
{
    dram::EccSecded ecc;
    Rng rng(2);
    dram::Codeword word = ecc.encode(rng.next());
    if (state.range(0) >= 1)
        dram::EccSecded::flipBit(word, 17);
    if (state.range(0) >= 2)
        dram::EccSecded::flipBit(word, 41);
    KernelProfile prof(state, kTightBatch);
    for (auto _ : state) {
        prof.begin();
        benchmark::DoNotOptimize(ecc.decode(word));
        prof.end();
    }
}
BENCHMARK(BM_EccDecode)->Arg(0)->Arg(1)->Arg(2);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache::Params params;
    params.sizeBytes = 32 * 1024;
    mem::Cache cache(params);
    Rng rng(3);
    KernelProfile prof(state, kTightBatch);
    for (auto _ : state) {
        prof.begin();
        benchmark::DoNotOptimize(
            cache.access(rng.uniformInt(std::uint64_t{1} << 20) * 8,
                         false));
        prof.end();
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_McuAccess(benchmark::State &state)
{
    dram::Geometry geometry;
    dram::Mcu mcu(geometry, 0);
    Rng rng(4);
    Cycles cycle = 0;
    KernelProfile prof(state, kTightBatch);
    for (auto _ : state) {
        prof.begin();
        dram::WordCoord coord = geometry.decode(
            rng.uniformInt(geometry.capacityBytes() / 8) * 8);
        coord.channel = 0;
        benchmark::DoNotOptimize(mcu.access(coord, false, cycle));
        cycle += 50;
        prof.end();
    }
}
BENCHMARK(BM_McuAccess);

void
BM_Spearman249(benchmark::State &state)
{
    Rng rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 140; ++i) { // one campaign's worth of samples
        x.push_back(rng.uniform());
        y.push_back(rng.uniform());
    }
    KernelProfile prof(state);
    for (auto _ : state) {
        prof.begin();
        for (int f = 0; f < 249; ++f)
            benchmark::DoNotOptimize(stats::spearman(x, y));
        prof.end();
    }
}
BENCHMARK(BM_Spearman249);

/**
 * The ranking kernel alone (the argsort inside every Spearman call),
 * swept across sample sizes so the O(n log n) scaling is visible in
 * the per-size times; the allocation-free ranksInto is the form the
 * selection path uses.
 */
void
BM_SpearmanRanks(benchmark::State &state)
{
    Rng rng(8);
    std::vector<double> x;
    for (std::int64_t i = 0; i < state.range(0); ++i)
        x.push_back(rng.uniform());
    std::vector<std::size_t> order;
    std::vector<double> out;
    KernelProfile prof(state);
    for (auto _ : state) {
        prof.begin();
        stats::ranksInto(x, order, out);
        benchmark::DoNotOptimize(out.data());
        prof.end();
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpearmanRanks)
    ->Arg(140)
    ->Arg(1120)
    ->Arg(8960)
    ->Complexity(benchmark::oNLogN);

/**
 * Full feature-selection pass over a campaign-shaped dataset: the
 * target is ranked once and every column is gathered and ranked once
 * (no per-pair copies), which is what replaced 249 independent
 * spearman() calls.
 */
void
BM_CorrelateFeatures(benchmark::State &state)
{
    Rng rng(9);
    std::vector<std::string> names;
    for (int j = 0; j < 249; ++j)
        names.push_back("f" + std::to_string(j));
    ml::Dataset data(names);
    for (int i = 0; i < 140; ++i) {
        std::vector<double> row;
        for (int j = 0; j < 249; ++j)
            row.push_back(rng.uniform());
        data.addSample(std::move(row), rng.uniform(), "g");
    }
    KernelProfile prof(state);
    for (auto _ : state) {
        prof.begin();
        benchmark::DoNotOptimize(ml::correlateFeatures(data));
        prof.end();
    }
}
BENCHMARK(BM_CorrelateFeatures);

/** Training data shaped like one device's WER dataset. */
ml::Matrix
campaignX(std::size_t rows, std::size_t cols)
{
    Rng rng(6);
    ml::Matrix x;
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<double> row;
        for (std::size_t j = 0; j < cols; ++j)
            row.push_back(rng.uniform());
        x.push_back(std::move(row));
    }
    return x;
}

std::vector<double>
campaignY(std::size_t rows)
{
    Rng rng(7);
    std::vector<double> y;
    for (std::size_t i = 0; i < rows; ++i)
        y.push_back(rng.uniform());
    return y;
}

template <typename Model>
void
predictLatency(benchmark::State &state, std::size_t features)
{
    const auto x = campaignX(140, features);
    const auto y = campaignY(140);
    Model model;
    model.fit(x, y);
    const auto query = campaignX(1, features)[0];
    KernelProfile prof(state);
    for (auto _ : state) {
        prof.begin();
        benchmark::DoNotOptimize(model.predict(query));
        prof.end();
    }
}

void
BM_KnnPredict_Set1(benchmark::State &state)
{
    predictLatency<ml::KnnRegressor>(state, 7);
}
BENCHMARK(BM_KnnPredict_Set1);

void
BM_KnnPredict_AllFeatures(benchmark::State &state)
{
    predictLatency<ml::KnnRegressor>(state, 252);
}
BENCHMARK(BM_KnnPredict_AllFeatures);

void
BM_SvrPredict_Set1(benchmark::State &state)
{
    predictLatency<ml::SvrRegressor>(state, 7);
}
BENCHMARK(BM_SvrPredict_Set1);

void
BM_RdfPredict_Set1(benchmark::State &state)
{
    predictLatency<ml::RandomForestRegressor>(state, 7);
}
BENCHMARK(BM_RdfPredict_Set1);

/** Forest traversal with deep feature vectors (all 252 features). */
void
BM_RdfPredict_AllFeatures(benchmark::State &state)
{
    predictLatency<ml::RandomForestRegressor>(state, 252);
}
BENCHMARK(BM_RdfPredict_AllFeatures);

/**
 * Batched forest scoring of one campaign's worth of rows — the shape
 * grid-search folds and permutation importance evaluate. One pass per
 * tree over the whole batch keeps its packed nodes cache-hot, unlike
 * 140 independent predict() calls.
 */
void
BM_RdfPredictMany_AllFeatures(benchmark::State &state)
{
    const auto x = campaignX(140, 252);
    const auto y = campaignY(140);
    ml::RandomForestRegressor model;
    model.fit(x, y);
    const auto queries = campaignX(140, 252);
    std::vector<double> out;
    KernelProfile prof(state);
    for (auto _ : state) {
        prof.begin();
        model.predictMany(queries, out);
        benchmark::DoNotOptimize(out.data());
        prof.end();
    }
}
BENCHMARK(BM_RdfPredictMany_AllFeatures);

void
BM_KnnFit_Set1(benchmark::State &state)
{
    const auto x = campaignX(140, 7);
    const auto y = campaignY(140);
    KernelProfile prof(state);
    for (auto _ : state) {
        prof.begin();
        ml::KnnRegressor model;
        model.fit(x, y);
        benchmark::DoNotOptimize(&model);
        prof.end();
    }
}
BENCHMARK(BM_KnnFit_Set1);

void
BM_ErrorIntegratorRun(benchmark::State &state)
{
    static sys::Platform platform([] {
        sys::Platform::Params p;
        p.hierarchy.l2.sizeBytes = 1 << 20;
        p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
        return p;
    }());
    workloads::Workload::Params wp;
    wp.footprintBytes = 2 << 20;
    wp.workScale = 0.5;
    const auto &profile = features::ProfileCache::instance().get(
        platform, {"srad", 8, "srad(par)"}, wp);
    core::ErrorIntegrator integrator;
    const dram::OperatingPoint op{2.283, dram::kMinVdd, 60.0};
    std::uint64_t seed = 0;
    KernelProfile prof(state);
    for (auto _ : state) {
        prof.begin();
        benchmark::DoNotOptimize(
            integrator.run(profile, op, platform.geometry(),
                           platform.devices(), seed++));
        prof.end();
    }
}
BENCHMARK(BM_ErrorIntegratorRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
