/**
 * @file
 * Paper Fig 9: (a) the probability of an uncorrectable error (PUE) per
 * benchmark for TREFP in {1.450, 1.727, 2.283} s at 70 C, from 10
 * repeats of each 2-hour experiment; (b) the distribution of UEs over
 * DIMM/rank devices. Table I's CE/UE taxonomy is exercised through the
 * real SECDED codec on the way.
 *
 * Paper reference points: mean PUE < 0.4 at 1.450 s, growing ~2.15x at
 * 1.727 s, and 1.0 for every benchmark at 2.283 s; most UEs land on
 * two of the eight devices.
 */

#include "dram/error_log.hh"
#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fig 9a", "PUE per benchmark at 70C (VDD=1.428V), "
                            "10 repeats each");

    const auto suite = workloads::standardSuite();
    const auto points = core::pueOperatingPoints();
    const int repeats = harness.repeats();
    const auto &geometry = harness.platform().geometry();

    dram::ErrorLog log(geometry);

    std::printf("%-14s", "benchmark");
    for (const auto &op : points)
        std::printf(" %9.3fs", op.trefp);
    std::printf("\n");

    std::vector<double> mean_per_point(points.size(), 0.0);
    for (const auto &config : suite) {
        std::printf("%-14s", config.label.c_str());
        for (std::size_t i = 0; i < points.size(); ++i) {
            int crashes = 0;
            for (int rep = 0; rep < repeats; ++rep) {
                const core::Measurement m = harness.campaign().measure(
                    config, points[i],
                    static_cast<std::uint64_t>(rep) + 1, &log);
                crashes += m.run.crashed ? 1 : 0;
            }
            const double pue =
                static_cast<double>(crashes) / repeats;
            mean_per_point[i] += pue / suite.size();
            std::printf(" %10.2f", pue);
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("%-14s", "Average");
    for (const double mean : mean_per_point)
        std::printf(" %10.2f", mean);
    std::printf("\n");
    if (mean_per_point[0] > 0.0)
        std::printf("growth 1.450s -> 1.727s: %.2fx (paper: 2.15x); "
                    "mean at 1.450s: %.2f (paper: < 0.4)\n",
                    mean_per_point[1] / mean_per_point[0],
                    mean_per_point[0]);

    bench::banner("Fig 9b",
                  "probability a UE lands on each DIMM/rank");
    const std::uint64_t total_ues = log.ueCountTotal();
    for (int d = 0; d < geometry.deviceCount(); ++d) {
        const auto id = geometry.deviceAt(d);
        const double share =
            total_ues > 0
                ? static_cast<double>(log.ueCount(id)) / total_ues
                : 0.0;
        std::printf("%-14s %6.2f\n", id.label().c_str(), share);
    }
    bench::rule();
    std::printf("total UEs logged: %llu; SDCs observed: %llu "
                "(paper: zero SDCs)\n",
                static_cast<unsigned long long>(total_ues),
                static_cast<unsigned long long>(log.sdcCountTotal()));

    bench::banner("Table I", "error taxonomy under SECDED (72,64)");
    std::printf("  1 corrupted bit  -> corrected (CE)\n"
                "  2 corrupted bits -> detected, uncorrected (UE, "
                "crash)\n"
                "  >2 corrupted bits -> possibly miscorrected (SDC)\n"
                "  (each logged record above passed through the real "
                "codec)\n");
    return 0;
}
