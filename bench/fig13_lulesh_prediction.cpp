/**
 * @file
 * Paper Fig 13: workload-aware vs conventional modelling. The trained
 * KNN model predicts the WER of two unseen lulesh builds (default -O2
 * and aggressive -F compiler optimizations) at TREFP = 0.618 s / 70 C;
 * the conventional model applies the random data-pattern
 * micro-benchmark's constant rate to every workload.
 *
 * Paper reference: the model predicts both lulesh builds within ~3%,
 * resolving their ~29% WER difference, while the conventional constant
 * rate is off by ~2.9x. Prediction takes < 300 ms on the paper's
 * setup; the per-query latency here is reported alongside.
 */

#include <chrono>

#include "harness.hh"
#include "ml/metrics.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fig 13", "measured vs predicted WER for lulesh(O2), "
                            "lulesh(F) and the random micro-benchmark");

    // Train the model on the standard 14-benchmark campaign; lulesh is
    // NOT part of the training suite.
    const auto measurements = harness.campaign().sweep(
        workloads::standardSuite(), core::werOperatingPoints());
    const auto model = core::DramErrorModel::trainWer(
        measurements, harness.platform().geometry().deviceCount(),
        core::DramErrorModel::Options{});

    const core::ConventionalModel conventional(
        harness.campaign(), core::werOperatingPoints());

    const dram::OperatingPoint op{0.618, dram::kMinVdd, 70.0};

    std::printf("%-14s %12s %12s %12s %10s\n", "workload", "measured",
                "predicted", "conventional", "pred.err%");

    double measured_o2 = 0.0, measured_f = 0.0;
    std::vector<double> measured_all, predicted_all, conventional_all;
    double predict_ns = 0.0;
    int predictions = 0;

    for (const auto &config : workloads::extendedSuite()) {
        const core::Measurement m =
            harness.campaign().measure(config, op);
        const auto start = std::chrono::steady_clock::now();
        const double predicted =
            model.predictWerAggregate(*m.profile, op);
        const auto stop = std::chrono::steady_clock::now();
        predict_ns += std::chrono::duration<double, std::nano>(
                          stop - start)
                          .count();
        ++predictions;

        const double constant = conventional.predictWer(op);
        const double err =
            m.run.wer() > 0.0
                ? ml::percentageError(m.run.wer(), predicted)
                : 0.0;
        std::printf("%-14s %12.3e %12.3e %12.3e %10.1f\n",
                    config.label.c_str(), m.run.wer(), predicted,
                    constant, err);

        if (config.label == "lulesh(O2)")
            measured_o2 = m.run.wer();
        if (config.label == "lulesh(F)")
            measured_f = m.run.wer();
        if (m.run.wer() > 0.0 && config.label != "random") {
            measured_all.push_back(m.run.wer());
            predicted_all.push_back(predicted);
            conventional_all.push_back(constant);
        }
    }

    bench::rule();
    if (measured_o2 > 0.0 && measured_f > 0.0)
        std::printf("lulesh(F) vs lulesh(O2) measured WER difference: "
                    "%.1f%% (paper: ~29%%)\n",
                    100.0 * (measured_f - measured_o2) / measured_o2);
    if (!measured_all.empty()) {
        std::printf("workload-aware model error factor: %.2fx; "
                    "conventional model error factor: %.2fx "
                    "(paper: ~2.9x)\n",
                    ml::errorFactor(measured_all, predicted_all),
                    ml::errorFactor(measured_all, conventional_all));
    }
    std::printf("prediction latency: %.1f us per query "
                "(paper: < 300 ms)\n",
                predict_ns / predictions / 1000.0);
    return 0;
}
