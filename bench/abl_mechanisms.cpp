/**
 * @file
 * Ablation study: which error-manifestation mechanism produces which
 * observation of the paper?
 *
 * Each row disables one mechanism of the integrator and reports the
 * observables the paper's Section V attributes to it:
 *  - cell-to-cell interference  -> the access-rate/WER correlation and
 *    backprop exceeding the random micro-benchmark (Fig 2);
 *  - implicit-refresh suppression -> memcached's low error rate and the
 *    workload spread (Fig 7);
 *  - VRT                         -> WER(t) convergence over the 2-hour
 *    run (Fig 4) and run-to-run PUE variation;
 *  - data-pattern vulnerability  -> the HDP/WER coupling (Fig 10).
 */

#include <cmath>

#include "harness.hh"

using namespace dfault;

namespace {

struct Ablation
{
    const char *name;
    const char *breaks;
    core::ErrorIntegrator::Params params;
};

struct Observables
{
    double backprop_vs_random = 0.0; ///< WER ratio (Fig 2 claim)
    double workload_spread = 0.0;    ///< max/min WER (Fig 7 claim)
    double memcached_rank = 0.0;     ///< memcached WER / max WER
    double convergence_tail = 0.0;   ///< last-10-min WER change, %
    double run_variation = 0.0;      ///< rel. stddev across run seeds
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Ablation",
                  "disable one mechanism, observe which paper claim "
                  "breaks (TREFP=2.283s, 60C)");

    core::ErrorIntegrator::Params base =
        harness.campaign().params().integrator;

    std::vector<Ablation> ablations;
    ablations.push_back({"full model", "-", base});
    {
        auto p = base;
        p.interference.strength = 0.0;
        ablations.push_back(
            {"no interference", "Fig 2 (backprop>random)", p});
    }
    {
        auto p = base;
        p.accessRefreshExponent = 0.0;
        ablations.push_back(
            {"no implicit refresh", "Fig 7 (memcached lowest)", p});
    }
    {
        auto p = base;
        // Always-active weak cells: no discovery curve, no repeats
        // variation. The UE coupling is rescaled so the pi_active
        // change ablates the CE dynamics, not the crash rate.
        const double pi = p.vrt.onRate / (p.vrt.onRate + p.vrt.offRate);
        p.ueWordCoupling *= pi * pi;
        p.vrt.onRate = 0.999;
        p.vrt.offRate = 0.0;
        ablations.push_back({"no VRT", "Fig 4 (convergence)", p});
    }
    {
        auto p = base;
        p.dataPatternVulnerability = false;
        ablations.push_back(
            {"no data pattern", "Fig 10 (HDP coupling)", p});
    }

    const dram::OperatingPoint op{2.283, dram::kMinVdd, 60.0};
    const std::vector<workloads::WorkloadConfig> configs{
        {"backprop", 8, "backprop(par)"},
        {"memcached", 8, "memcached"},
        {"nw", 8, "nw(par)"},
        {"srad", 8, "srad(par)"},
        {"random", 8, "random"},
    };
    auto &platform = harness.platform();
    const auto &wparams = harness.campaign().params().workload;

    std::printf("%-22s %10s %9s %10s %9s %9s  %s\n", "configuration",
                "bp/random", "spread", "memc/max", "tail%", "runvar%",
                "expected to break");

    for (const auto &ablation : ablations) {
        const core::ErrorIntegrator integrator(ablation.params);
        Observables obs;

        double backprop = 0.0, random_wer = 0.0, memc = 0.0;
        double lo = 1e300, hi = 0.0;
        for (const auto &config : configs) {
            const auto &profile =
                features::ProfileCache::instance().get(platform, config,
                                                       wparams);
            const auto run =
                integrator.run(profile, op, platform.geometry(),
                               platform.devices());
            const double wer = run.wer();
            if (config.label == "backprop(par)") {
                backprop = wer;
                // Last-10-minute change of the completed window; a
                // crashed/short run has no converged tail to measure.
                if (run.werSeries.size() >= 11 &&
                    run.werSeries.back() > 0.0) {
                    obs.convergence_tail =
                        100.0 *
                        (run.werSeries.back() -
                         run.werSeries[run.werSeries.size() - 11]) /
                        run.werSeries.back();
                } else {
                    obs.convergence_tail = 0.0;
                }
                // Run-to-run variation over 5 seeds.
                double sum = 0.0, sq = 0.0;
                for (std::uint64_t seed = 1; seed <= 5; ++seed) {
                    const double w =
                        integrator
                            .run(profile, op, platform.geometry(),
                                 platform.devices(), seed)
                            .wer();
                    sum += w;
                    sq += w * w;
                }
                const double mean = sum / 5.0;
                obs.run_variation =
                    mean > 0.0
                        ? 100.0 *
                              std::sqrt(std::max(0.0,
                                                 sq / 5.0 -
                                                     mean * mean)) /
                              mean
                        : 0.0;
            }
            if (config.label == "random")
                random_wer = wer;
            if (config.label == "memcached")
                memc = wer;
            if (config.label != "random") { // suite spread per Fig 7
                lo = std::min(lo, wer);
                hi = std::max(hi, wer);
            }
        }
        obs.backprop_vs_random =
            random_wer > 0.0 ? backprop / random_wer : 0.0;
        obs.workload_spread = lo > 0.0 ? hi / lo : 0.0;
        obs.memcached_rank = hi > 0.0 ? memc / hi : 0.0;

        std::printf("%-22s %10.2f %9.1f %10.2f %9.2f %9.2f  %s\n",
                    ablation.name, obs.backprop_vs_random,
                    obs.workload_spread, obs.memcached_rank,
                    obs.convergence_tail, obs.run_variation,
                    ablation.breaks);
    }

    bench::rule();
    std::printf(
        "reading: 'bp/random' collapses toward/below 1 without "
        "interference;\n'memc/max' rises without implicit refresh; "
        "'tail%%' goes to ~0 and 'runvar%%'\ncollapses without VRT; "
        "the data-pattern term shifts per-device rates only\n"
        "(its coupling is visible in fig10's HDP correlation).\n");
    return 0;
}
