/**
 * @file
 * Paper Fig 7 (a-f): WER per benchmark for DRAM operating under
 * TREFP in {0.618, 1.173, 1.727, 2.283} s and lowered VDD at
 * 50/60/70 C; panel (f) is the benchmark-averaged WER versus TREFP,
 * which grows exponentially.
 *
 * At 70 C only the two shortest TREFP levels complete without UEs
 * (paper §V-B); crashed cells are marked.
 */

#include <cmath>
#include <map>

#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    const auto suite = workloads::standardSuite();

    const Seconds trefps[] = {0.618, 1.173, 1.727, 2.283};

    std::vector<dram::OperatingPoint> points;
    for (const Celsius temp : {50.0, 60.0, 70.0}) {
        for (const Seconds trefp : trefps) {
            if (temp >= 70.0 && trefp > 1.2)
                continue; // UE territory, covered by Fig 9
            points.push_back({trefp, dram::kMinVdd, temp});
        }
    }

    // One pooled sweep over the whole workload x operating-point grid
    // (bit-identical to measuring each cell serially).
    const auto measurements = harness.campaign().sweep(suite, points);

    std::map<std::string, std::map<std::string, core::Measurement>>
        table;
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const auto &op = points[i % points.size()];
        table[op.label()].emplace(suite[i / points.size()].label,
                                  measurements[i]);
    }

    for (const Celsius temp : {50.0, 60.0, 70.0}) {
        char title[80];
        std::snprintf(title, sizeof(title),
                      "WER per benchmark at %.0fC (VDD=1.428V)", temp);
        bench::banner(temp < 60    ? "Fig 7a/7b"
                      : temp < 70  ? "Fig 7c/7d"
                                   : "Fig 7e",
                      title);
        std::printf("%-14s", "benchmark");
        for (const Seconds trefp : trefps) {
            if (temp >= 70.0 && trefp > 1.2)
                continue;
            std::printf(" %12.3fs", trefp);
        }
        std::printf("\n");

        for (const auto &config : suite) {
            std::printf("%-14s", config.label.c_str());
            for (const Seconds trefp : trefps) {
                if (temp >= 70.0 && trefp > 1.2)
                    continue;
                const dram::OperatingPoint op{trefp, dram::kMinVdd,
                                              temp};
                const auto &m = table[op.label()].at(config.label);
                if (m.run.crashed)
                    std::printf(" %13s", "UE(crash)");
                else
                    std::printf(" %13.3e", m.run.wer());
            }
            std::printf("\n");
        }

        // Per-panel spread (the paper quotes ~8x at 0.618 s / 70 C).
        for (const Seconds trefp : trefps) {
            if (temp >= 70.0 && trefp > 1.2)
                continue;
            const dram::OperatingPoint op{trefp, dram::kMinVdd, temp};
            double lo = 1e300, hi = 0.0;
            std::string lo_name, hi_name;
            for (const auto &config : suite) {
                const auto &m = table[op.label()].at(config.label);
                if (m.run.crashed || m.run.wer() <= 0.0)
                    continue;
                if (m.run.wer() < lo) {
                    lo = m.run.wer();
                    lo_name = config.label;
                }
                if (m.run.wer() > hi) {
                    hi = m.run.wer();
                    hi_name = config.label;
                }
            }
            if (hi > 0.0)
                std::printf("  spread at %.3fs: %.1fx (%s lowest, %s "
                            "highest)\n",
                            trefp, hi / lo, lo_name.c_str(),
                            hi_name.c_str());
        }
    }

    bench::banner("Fig 7f",
                  "benchmark-averaged WER vs TREFP (exponential growth)");
    std::printf("%-10s %14s %14s\n", "TREFP(s)", "avg WER 50C",
                "avg WER 60C");
    double prev50 = 0.0;
    for (const Seconds trefp : trefps) {
        std::printf("%-10.3f", trefp);
        for (const Celsius temp : {50.0, 60.0}) {
            const dram::OperatingPoint op{trefp, dram::kMinVdd, temp};
            double sum = 0.0;
            int n = 0;
            for (const auto &config : suite) {
                const auto &m = table[op.label()].at(config.label);
                if (!m.run.crashed) {
                    sum += m.run.wer();
                    ++n;
                }
            }
            const double avg = n > 0 ? sum / n : 0.0;
            std::printf(" %14.3e", avg);
            if (temp < 60.0) {
                if (prev50 > 0.0)
                    std::printf(" (x%.1f)", avg / prev50);
                prev50 = avg;
            }
        }
        std::printf("\n");
    }
    return 0;
}
