/**
 * @file
 * The paper's §VII future-work hypothesis, implemented: can a *fast*
 * characterization under relaxed parameters stand in for the years-long
 * observation needed to rank devices by their nominal-parameter failure
 * risk (predictive maintenance)?
 *
 * A fleet of simulated servers (distinct manufacturing seeds) is
 * characterized for two simulated hours at a relaxed operating point;
 * each (DIMM, rank) device is then ranked by its measured relaxed WER
 * and, independently, by its ground-truth nominal-parameter failure
 * intensity (which the simulator knows exactly from the retention
 * model). The Spearman rank correlation between the two orderings is
 * the figure of merit: high correlation means the 2-hour relaxed
 * characterization identifies the devices that will fail first in the
 * field.
 *
 * Phase two reframes the ranking as the online serving problem of the
 * AIOps deployments (ROADMAP item 2): a random forest trained on the
 * characterization features serves per-device risk predictions through
 * serve::PredictionService — bounded queue, priority classes, circuit
 * breakers, degraded fallback (a one-tree forest slice) — and the
 * study reports fleet precision/recall of the served predictions
 * against the ground-truth risk quartile *alongside availability*
 * (served vs degraded vs shed). Chaos knobs: arm serve.slow /
 * serve.error / serve.reject and shrink serve_budget to watch the
 * resilience machinery engage without losing a single disposition.
 *
 * Serving knobs (key=value): serve_rounds, serve_load (submissions per
 * device per round — 4 models sustained 4x over-capacity), serve_queue,
 * serve_budget, serve_shards, serve_degrade_after, serve_retries.
 *
 * Durability knobs (docs/serving.md "Durability and resume"):
 * journal_dir= arms the service write-ahead journal so a killed run
 * resumes from its last durable tick (the manifest then records
 * resumed_from_tick); serve_snapshot_every= sets the compaction
 * cadence; kill_at_tick=N arms serve.kill to _Exit the process at
 * tick N (kill_code= its exit code) — the long-horizon chaos case;
 * transcript_out= writes the full response transcript as JSONL for
 * byte-identical comparison between a killed-and-resumed run and a
 * clean one.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/rng.hh"
#include "dram/retention.hh"
#include "fi/durable.hh"
#include "fi/injector.hh"
#include "harness.hh"
#include "ml/forest.hh"
#include "obs/json.hh"
#include "serve/journal.hh"
#include "serve/service.hh"
#include "stats/correlation.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fleet study (paper §VII)",
                  "relaxed-parameter WER as a predictive-maintenance "
                  "signal");

    const int servers = static_cast<int>(
        harness.config().getInt("servers", 6));
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(
            harness.config().getInt("footprint_mib", 16))
        << 20;

    const dram::OperatingPoint relaxed{2.283, dram::kMinVdd, 60.0};
    const dram::OperatingPoint nominal{}; // 64 ms, 1.5 V, 50 C
    const dram::RetentionModel retention;

    std::vector<double> relaxed_wer, nominal_risk;
    ml::Matrix device_features; // rows for the serving-phase forest
    std::printf("%-8s %-12s %12s %16s\n", "server", "device",
                "relaxed WER", "nominal P(leak)");

    auto &live = obs::Registry::instance();
    live.gauge("live.fleet.servers_total",
               "servers in this fleet study (live)")
        .set(static_cast<double>(servers));

    for (int server = 0; server < servers; ++server) {
        sys::Platform::Params pp;
        pp.devices.masterSeed = 0xf1ee7 + server;
        pp.exec.timeDilation = sys::dilationForFootprint(footprint);
        sys::Platform platform(pp);

        core::CharacterizationCampaign::Params cp;
        cp.workload.footprintBytes = footprint;
        cp.workload.workScale =
            harness.config().getDouble("work_scale", 1.0);
        cp.useThermalLoop = false;
        core::CharacterizationCampaign campaign(platform, cp);

        const core::Measurement m = campaign.measure(
            {"srad", 8, "srad(par)"}, relaxed);

        for (int d = 0; d < platform.geometry().deviceCount(); ++d) {
            const double wer = m.run.werForDevice(d);
            // Ground truth the operator of a real fleet cannot see:
            // the per-cell leak probability at nominal parameters.
            const double risk = retention.weakProbability(
                dram::kNominalTrefp, nominal,
                platform.devices()[d].retentionScale());
            if (wer <= 0.0)
                continue; // no signal measured on this device
            relaxed_wer.push_back(wer);
            nominal_risk.push_back(risk);
            // Features for the serving-phase forest: the fast
            // characterization signal, the device's retention bin
            // (standing in for vendor binning data), and its fleet
            // position.
            device_features.push_back(
                {std::log10(wer),
                 platform.devices()[d].retentionScale(),
                 static_cast<double>(server), static_cast<double>(d)});
            if (d < 2) // keep the table readable
                std::printf("%-8d %-12s %12.3e %16.3e\n", server,
                            platform.geometry()
                                .deviceAt(d)
                                .label()
                                .c_str(),
                            wer, risk);
        }
        // Per-server progress for the sampler (digest-excluded
        // live.* prefix, so fleet ranking stays provenance-clean).
        live.counter("live.fleet.servers_done",
                     "servers characterized so far (live)")
            .inc();
        live.gauge("live.fleet.devices_ranked",
                   "devices with measurable relaxed WER so far (live)")
            .set(static_cast<double>(relaxed_wer.size()));
    }

    bench::rule();
    const double rs = stats::spearman(relaxed_wer, nominal_risk);
    std::printf("devices with measurable relaxed WER: %zu of %d\n",
                relaxed_wer.size(), servers * 8);
    std::printf("Spearman rank correlation (relaxed WER vs nominal "
                "failure risk): %+0.3f\n",
                rs);
    std::printf("=> a 2-hour relaxed characterization ranks fleet "
                "devices by field failure\n   risk%s -- the paper's "
                "predictive-maintenance proposal (§VII).\n",
                rs > 0.7 ? " accurately" : " only weakly");

    // ---- Phase two: online serving under pressure ------------------
    const std::size_t rounds = static_cast<std::size_t>(
        harness.config().getIntIn("serve_rounds", 8, 1, 100000));
    const std::size_t load = static_cast<std::size_t>(
        harness.config().getIntIn("serve_load", 1, 1, 1000));
    if (device_features.size() < 4) {
        std::printf("serving phase skipped: only %zu device(s) with "
                    "measurable WER\n",
                    device_features.size());
        return harness.exitCode(0);
    }

    bench::rule();
    std::printf("Serving phase: %zu devices x %zu rounds x %zu "
                "submissions/round\n",
                device_features.size(), rounds, load);

    // Train the primary on the characterization features; the target
    // is the log ground-truth risk. The degraded-mode fallback is a
    // one-tree slice of the same forest: ~1/25th of the predict cost.
    std::vector<double> target(nominal_risk.size());
    for (std::size_t i = 0; i < nominal_risk.size(); ++i)
        target[i] = std::log10(nominal_risk[i]);
    ml::RandomForestRegressor::Params fp;
    fp.trees = 25;
    fp.maxDepth = 8;
    ml::RandomForestRegressor forest(fp);
    forest.fit(device_features, target);
    ml::ForestSliceRegressor slice(forest, 1);

    serve::Params sp;
    sp.queueCapacity = static_cast<std::size_t>(
        harness.config().getIntIn("serve_queue", 64, 1, 1 << 20));
    sp.budgetPerTick = static_cast<std::size_t>(
        harness.config().getIntIn("serve_budget", 32, 1, 1 << 20));
    sp.degradeAfterTicks = static_cast<std::uint64_t>(
        harness.config().getIntIn("serve_degrade_after", 3, 0, 100000));
    sp.shards = static_cast<int>(
        harness.config().getIntIn("serve_shards", 2, 1, 64));
    sp.maxRetries = static_cast<int>(
        harness.config().getIntIn("serve_retries", 1, 0, 100));

    // Durability: journal_dir= makes the serving phase crash-resumable
    // (serve/journal.hh). The journal salt folds in every knob that
    // shapes the submission sequence, so a journal from a different
    // traffic configuration is quarantined, never silently replayed —
    // the same config-digest guard the campaign checkpoint uses.
    // Thread count and snapshot cadence are deliberately excluded.
    sp.journalDir = harness.config().getString("journal_dir", "");
    sp.snapshotEveryTicks = static_cast<std::uint64_t>(
        harness.config().getIntIn("serve_snapshot_every", 16, 0,
                                  1000000));
    {
        char traffic[160];
        std::snprintf(traffic, sizeof(traffic),
                      "fleet-traffic-v1,%d,%llu,%.17g,%zu,%zu",
                      servers,
                      static_cast<unsigned long long>(footprint),
                      harness.config().getDouble("work_scale", 1.0),
                      rounds, load);
        sp.journalSalt = fnv1a64(traffic);
    }

    // kill_at_tick=N is the chaos handle the long-horizon CI case
    // drives: the process _Exit()s right after tick N commits
    // in-memory but before it reaches the journal, so the tick is
    // re-served on resume.
    const std::int64_t kill_at_tick =
        harness.config().getIntIn("kill_at_tick", 0, 0, 1000000);
    if (kill_at_tick > 0) {
        const std::int64_t kill_code =
            harness.config().getIntIn("kill_code", 9, 1, 255);
        fi::Injector::instance().arm(
            "serve.kill:every=" + std::to_string(kill_at_tick) +
            ",count=1,code=" + std::to_string(kill_code));
    }

    serve::PredictionService service(forest, sp, &slice);

    // Resume: the restored tick says how many submission rounds are
    // already committed (round r commits as tick r+1); re-running them
    // would double-submit. A crash mid-round lost its partial
    // submissions with the unjournaled tick, so re-running that round
    // reproduces them deterministically.
    std::size_t start_round = 0;
    if (service.resumedFromTick() >= 0) {
        harness.setResumedFromTick(service.resumedFromTick());
        start_round = std::min(
            static_cast<std::size_t>(service.resumedFromTick()), rounds);
        std::printf("resumed from journal tick %lld: skipping %zu "
                    "committed round(s)\n",
                    static_cast<long long>(service.resumedFromTick()),
                    start_round);
    }

    // Deterministic priority rule: top-quartile measured WER is
    // mitigation-critical, every 5th device is a health probe, the
    // rest is bulk re-scoring (the class that sheds first).
    std::vector<double> wer_sorted = relaxed_wer;
    std::nth_element(wer_sorted.begin(),
                     wer_sorted.begin() + wer_sorted.size() * 3 / 4,
                     wer_sorted.end());
    const double wer_q75 = wer_sorted[wer_sorted.size() * 3 / 4];

    for (std::size_t round = start_round; round < rounds; ++round) {
        for (std::size_t rep = 0; rep < load; ++rep)
            for (std::size_t i = 0; i < device_features.size(); ++i) {
                serve::Request req;
                req.key = i;
                req.priority = relaxed_wer[i] >= wer_q75
                                   ? serve::Priority::Critical
                               : i % 5 == 0 ? serve::Priority::Health
                                            : serve::Priority::Bulk;
                req.shard = static_cast<int>(i) % sp.shards;
                req.features = device_features[i];
                service.submit(req);
            }
        service.tick();
    }
    service.drain();

    // Availability: every submission must hold a disposition.
    const auto &reg = obs::Registry::instance();
    const double submitted = reg.value("serve.submitted");
    const double served = reg.value("serve.served");
    const double degraded = reg.value("serve.degraded");
    const double shed = reg.value("serve.shed");
    if (submitted != served + degraded + shed) {
        std::fprintf(stderr,
                     "disposition conservation violated: %g submitted "
                     "!= %g served + %g degraded + %g shed\n",
                     submitted, served, degraded, shed);
        return harness.exitCode(1);
    }
    std::printf("dispositions: %.0f submitted = %.0f served + %.0f "
                "degraded + %.0f shed\n",
                submitted, served, degraded, shed);
    std::printf("shed by class: critical %.0f, health %.0f, bulk %.0f; "
                "breaker open/half-open/closed: %.0f/%.0f/%.0f\n",
                reg.value("serve.shed.critical"),
                reg.value("serve.shed.health"),
                reg.value("serve.shed.bulk"),
                reg.value("serve.breaker.opened"),
                reg.value("serve.breaker.half_open"),
                reg.value("serve.breaker.closed"));

    const std::vector<serve::Response> transcript =
        service.takeResponses();

    // transcript_out= captures every disposition in decision order —
    // a journaled, killed and resumed run must produce this file
    // byte-for-byte identical to an unkilled run's (the chaos gate).
    const std::string transcript_out =
        harness.config().getString("transcript_out", "");
    if (!transcript_out.empty()) {
        std::string body;
        for (const serve::Response &r : transcript) {
            obs::JsonWriter w;
            w.field("id", r.id);
            w.field("key", r.key);
            w.field("priority", serve::priorityName(r.priority));
            w.field("disposition",
                    serve::dispositionName(r.disposition));
            w.field("degraded", r.degraded);
            w.fieldRaw("prediction", obs::jsonNumber(r.prediction));
            w.field("reason", r.reason);
            body += w.str();
            body += '\n';
        }
        if (!fi::atomicWriteFile(transcript_out, body))
            return harness.exitCode(1);
        std::printf("serving transcript (%zu responses) written to %s\n",
                    transcript.size(), transcript_out.c_str());
    }

    // Fleet precision/recall of the *served* answers (primary or
    // degraded) against the ground-truth top risk quartile.
    std::vector<double> answer(device_features.size(),
                               std::numeric_limits<double>::quiet_NaN());
    for (const serve::Response &r : transcript)
        if (r.disposition != serve::Disposition::Shed)
            answer[r.key] = r.prediction; // last answer per device wins
    std::vector<double> answered;
    for (const double a : answer)
        if (std::isfinite(a))
            answered.push_back(a);
    if (answered.size() >= 4) {
        std::vector<double> risk_sorted = target;
        std::nth_element(risk_sorted.begin(),
                         risk_sorted.begin() + risk_sorted.size() * 3 / 4,
                         risk_sorted.end());
        const double risk_q75 = risk_sorted[risk_sorted.size() * 3 / 4];
        std::vector<double> pred_sorted = answered;
        std::nth_element(pred_sorted.begin(),
                         pred_sorted.begin() + pred_sorted.size() * 3 / 4,
                         pred_sorted.end());
        const double pred_q75 = pred_sorted[pred_sorted.size() * 3 / 4];
        int tp = 0, fp_n = 0, fn = 0;
        for (std::size_t i = 0; i < answer.size(); ++i) {
            if (!std::isfinite(answer[i]))
                continue;
            const bool truly_at_risk = target[i] >= risk_q75;
            const bool flagged = answer[i] >= pred_q75;
            tp += flagged && truly_at_risk;
            fp_n += flagged && !truly_at_risk;
            fn += !flagged && truly_at_risk;
        }
        const double precision =
            tp + fp_n > 0 ? static_cast<double>(tp) / (tp + fp_n) : 0.0;
        const double recall =
            tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
        const double availability = (served + degraded) / submitted;
        std::printf("fleet precision %.3f, recall %.3f (top risk "
                    "quartile, %zu/%zu devices answered)\n",
                    precision, recall, answered.size(), answer.size());
        std::printf("availability: %.1f%% answered (%.1f%% by the "
                    "primary, %.1f%% degraded)\n",
                    100.0 * availability, 100.0 * served / submitted,
                    100.0 * degraded / submitted);
        // Deterministic (digested) study results: the serving outcome
        // is a pure function of the submission sequence and the fault
        // schedule, so these belong in the golden digest.
        auto &fleet = obs::Registry::instance();
        fleet.gauge("fleet.serve.precision",
                    "serving-phase precision, top risk quartile")
            .set(precision);
        fleet.gauge("fleet.serve.recall",
                    "serving-phase recall, top risk quartile")
            .set(recall);
        fleet.gauge("fleet.serve.answered",
                    "devices with a served or degraded answer")
            .set(static_cast<double>(answered.size()));
    } else {
        std::printf("fleet precision/recall skipped: only %zu "
                    "answered device(s)\n",
                    answered.size());
    }
    return harness.exitCode(0);
}
