/**
 * @file
 * The paper's §VII future-work hypothesis, implemented: can a *fast*
 * characterization under relaxed parameters stand in for the years-long
 * observation needed to rank devices by their nominal-parameter failure
 * risk (predictive maintenance)?
 *
 * A fleet of simulated servers (distinct manufacturing seeds) is
 * characterized for two simulated hours at a relaxed operating point;
 * each (DIMM, rank) device is then ranked by its measured relaxed WER
 * and, independently, by its ground-truth nominal-parameter failure
 * intensity (which the simulator knows exactly from the retention
 * model). The Spearman rank correlation between the two orderings is
 * the figure of merit: high correlation means the 2-hour relaxed
 * characterization identifies the devices that will fail first in the
 * field.
 */

#include <cmath>

#include "dram/retention.hh"
#include "harness.hh"
#include "stats/correlation.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fleet study (paper §VII)",
                  "relaxed-parameter WER as a predictive-maintenance "
                  "signal");

    const int servers = static_cast<int>(
        harness.config().getInt("servers", 6));
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(
            harness.config().getInt("footprint_mib", 16))
        << 20;

    const dram::OperatingPoint relaxed{2.283, dram::kMinVdd, 60.0};
    const dram::OperatingPoint nominal{}; // 64 ms, 1.5 V, 50 C
    const dram::RetentionModel retention;

    std::vector<double> relaxed_wer, nominal_risk;
    std::printf("%-8s %-12s %12s %16s\n", "server", "device",
                "relaxed WER", "nominal P(leak)");

    auto &live = obs::Registry::instance();
    live.gauge("live.fleet.servers_total",
               "servers in this fleet study (live)")
        .set(static_cast<double>(servers));

    for (int server = 0; server < servers; ++server) {
        sys::Platform::Params pp;
        pp.devices.masterSeed = 0xf1ee7 + server;
        pp.exec.timeDilation = sys::dilationForFootprint(footprint);
        sys::Platform platform(pp);

        core::CharacterizationCampaign::Params cp;
        cp.workload.footprintBytes = footprint;
        cp.workload.workScale =
            harness.config().getDouble("work_scale", 1.0);
        cp.useThermalLoop = false;
        core::CharacterizationCampaign campaign(platform, cp);

        const core::Measurement m = campaign.measure(
            {"srad", 8, "srad(par)"}, relaxed);

        for (int d = 0; d < platform.geometry().deviceCount(); ++d) {
            const double wer = m.run.werForDevice(d);
            // Ground truth the operator of a real fleet cannot see:
            // the per-cell leak probability at nominal parameters.
            const double risk = retention.weakProbability(
                dram::kNominalTrefp, nominal,
                platform.devices()[d].retentionScale());
            if (wer <= 0.0)
                continue; // no signal measured on this device
            relaxed_wer.push_back(wer);
            nominal_risk.push_back(risk);
            if (d < 2) // keep the table readable
                std::printf("%-8d %-12s %12.3e %16.3e\n", server,
                            platform.geometry()
                                .deviceAt(d)
                                .label()
                                .c_str(),
                            wer, risk);
        }
        // Per-server progress for the sampler (digest-excluded
        // live.* prefix, so fleet ranking stays provenance-clean).
        live.counter("live.fleet.servers_done",
                     "servers characterized so far (live)")
            .inc();
        live.gauge("live.fleet.devices_ranked",
                   "devices with measurable relaxed WER so far (live)")
            .set(static_cast<double>(relaxed_wer.size()));
    }

    bench::rule();
    const double rs = stats::spearman(relaxed_wer, nominal_risk);
    std::printf("devices with measurable relaxed WER: %zu of %d\n",
                relaxed_wer.size(), servers * 8);
    std::printf("Spearman rank correlation (relaxed WER vs nominal "
                "failure risk): %+0.3f\n",
                rs);
    std::printf("=> a 2-hour relaxed characterization ranks fleet "
                "devices by field failure\n   risk%s -- the paper's "
                "predictive-maintenance proposal (§VII).\n",
                rs > 0.7 ? " accurately" : " only weakly");
    return 0;
}
