/**
 * @file
 * Model-based feature importance and hyperparameter selection —
 * pipeline extensions beyond the paper's Spearman screening.
 *
 * Part 1: permutation importance of a KNN model trained on input set 1
 * (+ operating parameters): which inputs does the deployed model
 * actually rely on? The paper's §VI-B overfitting story predicts that
 * the operating parameters dominate and the weak program features
 * contribute little.
 *
 * Part 2: LOGO grid search over KNN's k and the SVR box constraint,
 * selecting the configuration that generalizes to held-out benchmarks.
 */

#include <algorithm>
#include <cmath>

#include "harness.hh"
#include "ml/grid_search.hh"
#include "ml/importance.hh"
#include "ml/knn.hh"
#include "ml/scaler.hh"
#include "ml/svr.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);

    const auto measurements = harness.campaign().sweep(
        workloads::standardSuite(), core::werOperatingPoints());
    // Device 0's WER dataset on input set 1, log-space targets.
    auto data = core::makeWerDataset(measurements, 0,
                                     core::InputSet::Set1);
    ml::Dataset logdata(data.featureNames());
    for (std::size_t i = 0; i < data.size(); ++i)
        logdata.addSample(data.x()[i],
                          std::log10(std::max(data.y()[i], 1e-14)),
                          data.groups()[i]);

    bench::banner("Extension: permutation importance",
                  "what the deployed KNN/set1 model actually uses");
    {
        ml::StandardScaler scaler;
        scaler.fit(logdata.x());
        ml::Dataset scaled(logdata.featureNames());
        for (std::size_t i = 0; i < logdata.size(); ++i)
            scaled.addSample(scaler.transform(logdata.x()[i]),
                             logdata.y()[i], logdata.groups()[i]);

        ml::KnnRegressor model;
        model.fit(scaled.x(), scaled.y());
        for (const auto &fi : ml::rankImportance(model, scaled, 5))
            std::printf("  %-26s rmse increase %+0.3f (log10 "
                        "decades)\n",
                        fi.name.c_str(), fi.rmseIncrease);
    }

    bench::banner("Extension: LOGO grid search",
                  "hyperparameters selected on held-out benchmarks");
    std::vector<ml::GridCandidate> grid;
    for (const int k : {1, 3, 5, 9}) {
        ml::KnnRegressor::Params p;
        p.k = k;
        grid.push_back({"KNN k=" + std::to_string(k), [p] {
                            return std::make_unique<ml::KnnRegressor>(
                                p);
                        }});
    }
    for (const double c : {0.5, 2.0, 8.0}) {
        ml::SvrRegressor::Params p;
        p.c = c;
        grid.push_back(
            {"SVR C=" + std::to_string(c).substr(0, 3), [p] {
                 return std::make_unique<ml::SvrRegressor>(p);
             }});
    }
    const auto results = ml::gridSearch(logdata, grid);
    const std::size_t best = ml::bestCandidate(results);
    for (std::size_t i = 0; i < results.size(); ++i)
        std::printf("  %-14s mean RMSE %.3f decades%s\n",
                    results[i].label.c_str(), results[i].meanRmse,
                    i == best ? "   <= selected" : "");
    return 0;
}
