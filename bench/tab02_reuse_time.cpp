/**
 * @file
 * Paper Table II: the average DRAM reuse time (Treuse, seconds) per
 * workload, single-threaded vs 8 threads.
 *
 * Paper values for reference:
 *            nw    srad  backprop  kmeans   fmm
 *   1 thread 10.93  2.82   1.61     0.17    8.88
 *   8 threads 4.06  1.89   1.10     0.50    2.41
 *   memcached 0.09  pagerank 0.48  bfs 0.61  bc 0.56 (8 threads)
 */

#include "features/extractor.hh"
#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Table II", "average DRAM reuse time (seconds)");

    const auto &wparams = harness.campaign().params().workload;

    std::printf("%-12s %12s %12s\n", "kernel", "1 thread",
                "8 threads");
    for (const char *kernel : {"nw", "srad", "backprop", "kmeans",
                               "fmm"}) {
        std::printf("%-12s", kernel);
        for (const int threads : {1, 8}) {
            const auto &profile = features::ProfileCache::instance().get(
                harness.platform(), {kernel, threads, kernel}, wparams);
            std::printf(" %12.2f", profile.treuse);
        }
        std::printf("\n");
    }

    bench::rule();
    std::printf("%-12s %12s %12s\n", "kernel", "", "8 threads");
    for (const char *kernel : {"memcached", "pagerank", "bfs", "bc"}) {
        const auto &profile = features::ProfileCache::instance().get(
            harness.platform(), {kernel, 8, kernel}, wparams);
        std::printf("%-12s %12s %12.2f\n", kernel, "",
                    profile.treuse);
    }
    return 0;
}
