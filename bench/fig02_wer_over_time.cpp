/**
 * @file
 * Paper Fig 2: WER over a 2-hour run for memcached, backprop and the
 * random data-pattern micro-benchmark under TREFP = 2.283 s, lowered
 * VDD, at 70 C with 8 threads.
 *
 * The paper's headline observation: the WER incurred by backprop is
 * ~3.5x higher than the random micro-benchmark's — real applications
 * can trigger errors in *more* locations than the conventional
 * worst-case data-pattern workload.
 *
 * Note: at this operating point UEs are frequent (Fig 9a); as in the
 * paper's figure, the series shown is the CE accumulation of a run,
 * with crashes reported alongside.
 */

#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fig 2", "WER(t) for memcached / backprop / random at "
                           "TREFP=2.283s, 1.428V, 70C");

    const dram::OperatingPoint op{2.283, dram::kMinVdd, 70.0};
    const std::vector<workloads::WorkloadConfig> configs{
        {"memcached", 8, "memcached"},
        {"backprop", 8, "backprop"},
        {"random", 8, "random"},
    };

    std::vector<core::Measurement> runs;
    for (const auto &config : configs) {
        // Pick the longest-surviving run of a few repeats, as the
        // paper's 2-hour series come from runs that completed.
        core::Measurement best =
            harness.campaign().measure(config, op, 1);
        for (std::uint64_t seed = 2; seed <= 5; ++seed) {
            core::Measurement m =
                harness.campaign().measure(config, op, seed);
            if (m.run.werSeries.size() > best.run.werSeries.size())
                best = std::move(m);
        }
        runs.push_back(std::move(best));
    }

    std::printf("%-10s", "minutes");
    for (const auto &m : runs)
        std::printf(" %14s", m.label.c_str());
    std::printf("\n");

    for (int minute = 10; minute <= 120; minute += 10) {
        std::printf("%-10d", minute);
        for (const auto &m : runs) {
            const auto idx = static_cast<std::size_t>(minute - 1);
            if (idx < m.run.werSeries.size())
                std::printf(" %14.3e", m.run.werSeries[idx]);
            else
                std::printf(" %14s", "UE(crash)");
        }
        std::printf("\n");
    }

    bench::rule();
    double backprop_wer = 0.0, random_wer = 0.0;
    for (const auto &m : runs) {
        std::printf("%-10s final WER %.3e after %zu min%s\n",
                    m.label.c_str(),
                    m.run.werSeries.empty() ? 0.0
                                            : m.run.werSeries.back(),
                    m.run.werSeries.size(),
                    m.run.crashed ? " (run ended in a UE)" : "");
        if (m.label == "backprop" && !m.run.werSeries.empty())
            backprop_wer = m.run.werSeries.back();
        if (m.label == "random" && !m.run.werSeries.empty())
            random_wer = m.run.werSeries.back();
    }
    if (backprop_wer > 0.0 && random_wer > 0.0)
        std::printf("backprop / random WER ratio: %.2fx "
                    "(paper: ~3.5x)\n",
                    backprop_wer / random_wer);
    return 0;
}
