/**
 * @file
 * Paper Fig 4: WER(t) for every benchmark configuration over the
 * 2-hour run under TREFP = 2.283 s and lowered VDD at 50 C —
 * demonstrating that 120 minutes suffices for the unique-location WER
 * to converge (the paper reports < 3% change over the last 10 min).
 */

#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fig 4",
                  "WER(t) convergence for all benchmarks at "
                  "TREFP=2.283s, 1.428V, 50C");

    const dram::OperatingPoint op{2.283, dram::kMinVdd, 50.0};
    const auto suite = workloads::standardSuite();

    std::printf("%-14s %10s %10s %10s %10s %12s\n", "benchmark",
                "30min", "60min", "90min", "120min", "last10min%");

    // A sweep (not a measure() loop) so the harness's checkpoint/
    // retry/quarantine machinery applies: fig04 doubles as the chaos
    // suite's kill-and-resume workload.
    std::vector<core::Measurement> measurements;
    try {
        measurements = harness.campaign().sweep(suite, {op});
    } catch (const par::CancelledError &e) {
        // fail_fast=true only: returning lets the harness destructor
        // still write checkpoint-consistent partial artifacts.
        DFAULT_WARN("run cancelled: ", e.what(),
                    "; writing partial artifacts");
        return bench::Harness::exitCode(1);
    }

    double worst_tail = 0.0;
    std::size_t n_cancelled = 0;
    for (const core::Measurement &m : measurements) {
        if (m.cancelled) {
            ++n_cancelled;
            continue;
        }
        if (m.quarantined) {
            std::printf("%-14s quarantined: %s\n", m.label.c_str(),
                        m.failure.c_str());
            continue;
        }
        const auto &series = m.run.werSeries;
        if (series.size() < 120) {
            std::printf("%-14s crashed after %zu minutes\n",
                        m.label.c_str(), series.size());
            continue;
        }
        const double tail_change =
            series[119] > 0.0
                ? 100.0 * (series[119] - series[109]) / series[119]
                : 0.0;
        worst_tail = std::max(worst_tail, tail_change);
        std::printf("%-14s %10.3e %10.3e %10.3e %10.3e %11.2f%%\n",
                    m.label.c_str(), series[29], series[59],
                    series[89], series[119], tail_change);
    }

    bench::rule();
    if (n_cancelled > 0)
        std::printf("%zu cell(s) cancelled before completion; rerun "
                    "with the same checkpoint= dir to finish them\n",
                    n_cancelled);
    std::printf("worst last-10-minute change: %.2f%% "
                "(paper: < 3%% at 50C)\n",
                worst_tail);
    return bench::Harness::exitCode();
}
