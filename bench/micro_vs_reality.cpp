/**
 * @file
 * Paper §II-C quantified: can conventional retention profiling (the
 * random data-pattern micro-benchmark, RAIDR/AVATAR-style) predict the
 * rows where *real applications* manifest errors?
 *
 * The paper argues it cannot, in both directions: "real applications
 * may trigger errors in many more memory locations than the
 * conventional data pattern micro-benchmarks" (unsafe), while also
 * being "too pessimistic ... since real applications, such as
 * memcached, may trigger errors in fewer memory locations" (wasteful).
 */

#include "core/retention_profiler.hh"
#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Micro vs reality (paper §II-C)",
                  "retention profile from the random micro-benchmark "
                  "vs real apps' error rows");

    core::RetentionProfiler profiler(harness.campaign());
    const Seconds eval_trefp = 2.283;

    // Profile the two extreme devices (weakest and strongest).
    const auto &devices = harness.platform().devices();
    int weakest = 0, strongest = 0;
    for (int d = 0; d < static_cast<int>(devices.size()); ++d) {
        if (devices[d].retentionScale() <
            devices[weakest].retentionScale())
            weakest = d;
        if (devices[d].retentionScale() >
            devices[strongest].retentionScale())
            strongest = d;
    }

    for (const int device : {weakest, strongest}) {
        const auto id = harness.platform().geometry().deviceAt(device);
        std::printf("\ndevice %s (retention scale %.2f):\n",
                    id.label().c_str(),
                    devices[device].retentionScale());
        const auto profile = profiler.profileDevice(device);
        std::printf("  profiled weak rows: %zu (plus %llu never "
                    "flagged)\n",
                    profile.firstFailingTrefp.size(),
                    static_cast<unsigned long long>(
                        profile.unflaggedRows));

        std::printf("  %-14s %10s %12s %12s %12s %12s\n", "workload",
                    "err rows", "missed", "miss%", "flagged-ok",
                    "false-alarm%");
        for (const workloads::WorkloadConfig config :
             {workloads::WorkloadConfig{"backprop", 8,
                                        "backprop(par)"},
              workloads::WorkloadConfig{"srad", 8, "srad(par)"},
              workloads::WorkloadConfig{"memcached", 8, "memcached"},
              workloads::WorkloadConfig{"pagerank", 8, "pagerank"}}) {
            const auto mismatch = profiler.compare(profile, config,
                                                   eval_trefp, device);
            std::printf("  %-14s %10llu %12llu %11.1f%% %12llu "
                        "%11.1f%%\n",
                        config.label.c_str(),
                        static_cast<unsigned long long>(
                            mismatch.appErrorRows),
                        static_cast<unsigned long long>(
                            mismatch.missedByProfile),
                        100.0 * mismatch.missRate(),
                        static_cast<unsigned long long>(
                            mismatch.falseAlarms),
                        100.0 * mismatch.falseAlarmRate());
        }
    }

    bench::rule();
    std::printf(
        "reading: a nonzero 'miss%%' means a retention-class refresh "
        "schedule built\nfrom the micro-benchmark would under-refresh "
        "rows a real app corrupts (the\npaper's safety warning); a "
        "large 'false-alarm%%' means the schedule wastes\nrefresh "
        "energy on rows the app implicitly refreshes itself.\n");
    return 0;
}
