/**
 * @file
 * Paper Table III and Fig 11: the mean percentage error of WER
 * estimates from SVM / KNN / RDF under the three input feature sets,
 * per DIMM/rank (Fig 11 a-c) and per application (Fig 11 d-f), using
 * Leave-One-Benchmark-Out cross-validation.
 *
 * Paper reference: KNN with input set 1 is the most accurate
 * (avg ~10.1%), SVM reaches ~16.3%, and RDF inverts the pattern
 * (best with all features). Training on all 249 features degrades SVM
 * and KNN (overfitting, §VI-B).
 */

#include <map>

#include "stats/bootstrap.hh"

#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);

    bench::banner("Table III", "model input feature sets");
    for (const core::InputSet set : core::kAllInputSets) {
        const auto names = core::inputSetFeatures(set);
        std::printf("%s: TEMPDRAM, TREFP, VDD",
                    core::inputSetName(set).c_str());
        if (set == core::InputSet::Set3) {
            std::printf(", all %zu program features\n", names.size());
        } else {
            for (const auto &n : names)
                std::printf(", %s", n.c_str());
            std::printf("\n");
        }
    }

    const auto suite = workloads::standardSuite();
    const auto measurements =
        harness.campaign().sweep(suite, core::werOperatingPoints());
    const int devices = harness.platform().geometry().deviceCount();

    // evaluation[model][set][device]
    std::map<core::ModelKind,
             std::map<core::InputSet, std::vector<core::EvaluationResult>>>
        evaluation;
    for (const core::ModelKind kind : core::kAllModelKinds) {
        for (const core::InputSet set : core::kAllInputSets) {
            auto &results = evaluation[kind][set];
            for (int d = 0; d < devices; ++d) {
                const auto data =
                    core::makeWerDataset(measurements, d, set);
                results.push_back(
                    core::evaluateModel(data, kind, true));
            }
        }
    }

    const auto &geometry = harness.platform().geometry();
    for (const core::ModelKind kind : core::kAllModelKinds) {
        bench::banner("Fig 11a-c (" + core::modelKindName(kind) + ")",
                      "MPE of WER estimates per DIMM/rank, %");
        std::printf("%-12s %12s %12s %12s\n", "device",
                    "input set 1", "input set 2", "input set 3");
        std::vector<double> set_avgs(3, 0.0);
        for (int d = 0; d < devices; ++d) {
            std::printf("%-12s", geometry.deviceAt(d).label().c_str());
            int s = 0;
            for (const core::InputSet set : core::kAllInputSets) {
                const double mpe = evaluation[kind][set][d].mpe;
                set_avgs[s++] += mpe / devices;
                std::printf(" %12.1f", mpe);
            }
            std::printf("\n");
        }
        std::printf("%-12s", "Average");
        for (const double avg : set_avgs)
            std::printf(" %12.1f", avg);
        std::printf("\n");
    }

    for (const core::ModelKind kind : core::kAllModelKinds) {
        bench::banner("Fig 11d-f (" + core::modelKindName(kind) + ")",
                      "MPE of WER estimates per application, %");
        std::printf("%-14s %12s %12s %12s\n", "benchmark",
                    "input set 1", "input set 2", "input set 3");
        for (const auto &config : suite) {
            std::printf("%-14s", config.label.c_str());
            for (const core::InputSet set : core::kAllInputSets) {
                // Average the per-application error across devices.
                double sum = 0.0;
                int n = 0;
                for (int d = 0; d < devices; ++d) {
                    const auto &per_group =
                        evaluation[kind][set][d].mpePerGroup;
                    const auto it = per_group.find(config.label);
                    if (it != per_group.end()) {
                        sum += it->second;
                        ++n;
                    }
                }
                if (n > 0)
                    std::printf(" %12.1f", sum / n);
                else
                    std::printf(" %12s", "-");
            }
            std::printf("\n");
        }
    }

    bench::rule();
    std::printf("summary (average MPE over devices, %%):\n");
    for (const core::ModelKind kind : core::kAllModelKinds) {
        std::printf("  %-4s", core::modelKindName(kind).c_str());
        for (const core::InputSet set : core::kAllInputSets) {
            double avg = 0.0;
            for (int d = 0; d < devices; ++d)
                avg += evaluation[kind][set][d].mpe / devices;
            std::printf("  %s=%.1f", core::inputSetName(set).c_str(),
                        avg);
        }
        std::printf("\n");
    }
    std::printf("(paper: KNN/set1 ~10.1, SVM/set1 ~16.3, RDF best "
                "with set3 ~12.9)\n");

    // Stability of the headline number: bootstrap CI over the
    // per-benchmark errors of KNN on its best input set.
    std::vector<double> knn_group_errors;
    for (int d = 0; d < devices; ++d)
        for (const auto &kv :
             evaluation[core::ModelKind::Knn][core::InputSet::Set2][d]
                 .mpePerGroup)
            knn_group_errors.push_back(kv.second);
    if (!knn_group_errors.empty()) {
        const auto ci = stats::bootstrapMeanCi(knn_group_errors);
        std::printf("KNN/set2 MPE over benchmark-device cells: %.1f%% "
                    "(95%% CI %.1f..%.1f)\n",
                    ci.mean, ci.lo, ci.hi);
    }
    return 0;
}
