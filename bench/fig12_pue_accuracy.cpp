/**
 * @file
 * Paper Fig 12: the mean percentage error of PUE estimates averaged
 * over applications and DIMMs for SVM / KNN / RDF under the three
 * input sets.
 *
 * Paper reference: KNN and RDF achieve their best PUE accuracy with
 * input set 2 (4.1% and 5.5%), ~3x better than SVM's best (12.3% with
 * set 1).
 */

#include "harness.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Fig 12",
                  "MPE of PUE estimates (LOBO CV), % -- 70C, "
                  "TREFP in {1.450, 1.727, 2.283} s");

    const auto suite = workloads::standardSuite();
    const auto samples = core::collectPueSamples(
        harness.campaign(), suite, core::pueOperatingPoints(),
        harness.repeats());

    std::printf("%-6s %12s %12s %12s\n", "model", "input set 1",
                "input set 2", "input set 3");
    for (const core::ModelKind kind : core::kAllModelKinds) {
        std::printf("%-6s", core::modelKindName(kind).c_str());
        for (const core::InputSet set : core::kAllInputSets) {
            const auto data = core::makePueDataset(harness.campaign(),
                                                   samples, set);
            const auto result =
                core::evaluateModel(data, kind, /*log_target=*/false);
            std::printf(" %12.1f", result.mpe);
        }
        std::printf("\n");
    }

    bench::rule();
    std::printf("(paper: KNN/set2 4.1, RDF/set2 5.5, SVM/set1 12.3)\n");
    return 0;
}
