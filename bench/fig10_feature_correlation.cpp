/**
 * @file
 * Paper Fig 10: Spearman rank correlation of the 249 program features
 * against WER and against PUE.
 *
 * The paper's reading: the memory access rate is the strongest WER
 * correlate (rs ~ 0.57), wait cycles follow (~0.4), HDP ~0.39, and
 * Treuse is weakest (~0.23); PUE correlations are lower across the
 * board (access rate ~0.43).
 */

#include <algorithm>

#include "harness.hh"
#include "ml/selection.hh"

using namespace dfault;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);

    // WER dataset: the TREFP x temperature grid that stays UE-free
    // (paper §VI-A), pooled across the 14 benchmarks; per-device
    // targets averaged into the aggregate WER as in the paper.
    const auto suite = workloads::standardSuite();
    const auto measurements =
        harness.campaign().sweep(suite, core::werOperatingPoints());

    ml::Dataset wer_data(
        features::FeatureCatalog::instance().names());
    for (const auto &m : measurements) {
        if (m.run.crashed)
            continue;
        wer_data.addSample(m.profile->features.values(), m.run.wer(),
                           m.label);
    }

    // PUE dataset: 70 C, the three UE-prone TREFP levels.
    const int repeats = harness.repeats();
    ml::Dataset pue_data(
        features::FeatureCatalog::instance().names());
    for (const auto &config : suite) {
        for (const auto &op : core::pueOperatingPoints()) {
            const double pue =
                harness.campaign().measurePue(config, op, repeats);
            const auto &profile = features::ProfileCache::instance().get(
                harness.platform(), config,
                harness.campaign().params().workload);
            pue_data.addSample(profile.features.values(), pue,
                               config.label);
        }
    }

    const auto wer_cors = ml::correlateFeatures(wer_data);
    const auto pue_cors = ml::correlateFeatures(pue_data);

    bench::banner("Fig 10",
                  "Spearman rs of 249 program features vs WER and PUE");

    const char *headline[] = {"mem_accesses_per_cycle",
                              "wait_cycles_ratio", "hdp_entropy",
                              "treuse_seconds", "ipc",
                              "cpu_utilization"};
    std::printf("headline features (paper's Fig 10 annotations):\n");
    std::printf("%-26s %10s %10s\n", "feature", "rs(WER)", "rs(PUE)");
    for (const char *name : headline) {
        const std::size_t idx =
            features::FeatureCatalog::instance().index(name);
        std::printf("%-26s %+10.3f %+10.3f\n", name, wer_cors[idx].rs,
                    pue_cors[idx].rs);
    }

    bench::rule();
    std::printf("strongest |rs(WER)| program features:\n");
    auto ranked = ml::rankFeatures(wer_data);
    int shown = 0;
    for (const auto &c : ranked) {
        std::printf("  %-32s rs(WER)=%+6.3f rs(PUE)=%+6.3f\n",
                    c.name.c_str(), c.rs,
                    pue_cors[c.featureIndex].rs);
        if (++shown == 15)
            break;
    }

    bench::rule();
    int positive = 0, negative = 0, weak = 0;
    for (const auto &c : wer_cors) {
        if (c.rs > 0.2)
            ++positive;
        else if (c.rs < -0.2)
            ++negative;
        else
            ++weak;
    }
    std::printf("feature population: %d with rs > 0.2, %d with "
                "rs < -0.2, %d weak (|rs| <= 0.2) of %zu\n",
                positive, negative, weak, wer_cors.size());
    return 0;
}
