/**
 * @file
 * Shared harness for the paper-reproduction benchmark binaries.
 *
 * Every bench binary regenerates one table or figure of the paper on
 * the full-scale simulated platform (16 MiB footprint, default caches).
 * Command-line "key=value" overrides allow reduced runs:
 *   footprint_mib=8 work_scale=0.5 epochs=60 repeats=5
 *
 * Telemetry overrides (see docs/observability.md):
 *   stats_out=<path>     dump the stats registry when the bench exits;
 *                        also writes <path>.manifest.json provenance
 *   trace_out=<path>     stream JSONL events ("-" for stderr)
 *   trace_events=<path>  record spans, export Perfetto trace-event
 *                        JSON, print the exclusive-time critical path
 *   manifest_out=<path>  write the run manifest here (default
 *                        <stats_out>.manifest.json)
 *   progress=true        one-line progress updates on stderr
 *   perf_counters=true   per-phase hardware-counter attribution
 *                        (perf.phase.<path>.*) plus a perf table at
 *                        exit; degrades to zeros where
 *                        perf_event_open is unavailable
 *   alloc_track=true     per-phase heap allocation attribution
 *                        (alloc.phase.<path>.bytes/.allocs)
 *   metrics_out=<path>   background sampler atomically rewrites this
 *                        OpenMetrics snapshot every tick
 *   metrics_port=<port>  serve GET /metrics on 127.0.0.1:<port>
 *                        (0 picks a free port)
 *   sample_interval=<d>  sampler cadence, e.g. 100ms (the default)
 *   slo=<spec>[,...]     SLO targets, e.g. slo=campaign.cell_ns:p99<5ms
 *                        (see docs/observability.md); verdicts land in
 *                        the manifest "slo" section
 *
 * Parallelism (see docs/parallelism.md):
 *   threads=<n>        size the global pool (overrides DFAULT_THREADS);
 *                      results are bit-identical for any value
 *
 * Robustness (see docs/robustness.md):
 *   faults=<spec>        arm fault-injection points (grammar in
 *                        fi/injector.hh; adds to DFAULT_FAULTS)
 *   checkpoint=<dir>     journal completed sweep cells there and
 *                        resume from them on the next run
 *   retries=<n>          per-cell retries before quarantine (default 2)
 *   fail_fast=true       abort the sweep on an exhausted cell instead
 *                        of degrading to a quarantine report
 *   quarantine_out=<path> quarantine report destination (default
 *                        <stats_out>.quarantine.json, only written
 *                        when cells were quarantined)
 *   task_timeout=<s>     watchdog flags a task silent for this long;
 *                        the task fails at its next heartbeat and is
 *                        retried or quarantined like any failure
 *   deadline=<s>         cancel the whole run after this much wall time
 *
 * SIGINT/SIGTERM cancel the run cooperatively: the bench's main should
 * catch par::CancelledError, let the Harness destructor run (it still
 * writes every artifact, marking the manifest "interrupted": true),
 * and return exitCode(). A second signal exits immediately.
 *
 * A per-phase timing table and the total wall clock are printed at
 * exit regardless.
 */

#ifndef DFAULT_BENCH_HARNESS_HH
#define DFAULT_BENCH_HARNESS_HH

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "core/characterization.hh"
#include "core/dataset_builder.hh"
#include "core/error_model.hh"
#include "core/report.hh"
#include "core/trainer.hh"
#include "fi/injector.hh"
#include "obs/alloc_tracker.hh"
#include "obs/events.hh"
#include "obs/manifest.hh"
#include "obs/perf_counters.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"
#include "obs/trace_writer.hh"
#include "par/cancel.hh"
#include "par/pool.hh"
#include "par/shutdown.hh"
#include "sys/platform.hh"
#include "workloads/registry.hh"

namespace dfault::bench {

/** Platform + campaign configured from the command line. */
class Harness
{
  public:
    Harness(int argc, char **argv)
        : start_(std::chrono::steady_clock::now())
    {
        // Install before any work starts so an early ^C already
        // drains cooperatively instead of killing the bench mid-write.
        par::installSignalHandlers();
        tool_ = argc > 0 ? argv[0] : "bench";
        const std::size_t slash = tool_.find_last_of('/');
        if (slash != std::string::npos)
            tool_ = tool_.substr(slash + 1);
        for (int i = 0; i < argc; ++i) {
            if (i > 0)
                commandLine_ += ' ';
            commandLine_ += argv[i];
        }
        config_.parseArgs(argc, argv);
        // Touching the injector here validates a malformed
        // DFAULT_FAULTS spec up front, even on runs that never reach a
        // fault point.
        const std::string faults = config_.getString("faults", "");
        if (!faults.empty())
            fi::Injector::instance().arm(faults);
        else
            (void)fi::Injector::instance();
        const int threads =
            static_cast<int>(config_.getIntIn("threads", 0, 1, 4096));
        if (threads > 0)
            par::Pool::setGlobalThreads(threads);
        const std::uint64_t footprint =
            static_cast<std::uint64_t>(
                config_.getIntIn("footprint_mib", 16, 1, 1 << 20))
            << 20;

        sys::Platform::Params pp;
        pp.exec.timeDilation = sys::dilationForFootprint(footprint);
        platform_ = std::make_unique<sys::Platform>(pp);

        core::CharacterizationCampaign::Params cp;
        cp.workload.footprintBytes = footprint;
        cp.workload.workScale =
            config_.getDoubleIn("work_scale", 1.0, 1e-6, 1000.0);
        cp.integrator.epochs = static_cast<int>(
            config_.getIntIn("epochs", 120, 1, 1000000));
        cp.useThermalLoop = config_.getBool("thermal_loop", true);
        cp.taskRetries = static_cast<int>(
            config_.getIntIn("retries", cp.taskRetries, 0, 1000));
        cp.failFast = config_.getBool("fail_fast", cp.failFast);
        cp.checkpointDir = config_.getString("checkpoint", "");
        campaign_ = std::make_unique<core::CharacterizationCampaign>(
            *platform_, cp);

        statsOut_ = config_.getString("stats_out", "");
        manifestOut_ = config_.getString("manifest_out", "");
        const std::string trace = config_.getString("trace_out", "");
        if (!trace.empty())
            obs::EventSink::instance().open(trace);
        traceEvents_ = config_.getString("trace_events", "");
        if (!traceEvents_.empty())
            obs::SpanTracer::instance().enable();
        obs::setProgress(config_.getBool("progress", false));
        perfCounters_ = config_.getBool("perf_counters", false);
        if (perfCounters_) {
            obs::PerfCounters::setPhaseProfiling(true);
            const auto &pc = obs::PerfCounters::threadInstance();
            if (!pc.available())
                DFAULT_INFORM("perf counters unavailable (",
                              pc.unavailableReason(),
                              "); perf.* stats will read zero");
        }
        if (config_.getBool("alloc_track", false))
            obs::AllocTracker::enable();

        // Supervision: a watchdog for silent tasks and a wall-clock
        // deadline for the whole run. 0 (the default) disables each.
        par::WatchdogOptions wd;
        wd.taskTimeoutSeconds =
            config_.getDoubleIn("task_timeout", 0.0, 0.0, 86400.0);
        wd.deadlineSeconds =
            config_.getDoubleIn("deadline", 0.0, 0.0, 86400.0);
        if (wd.taskTimeoutSeconds > 0.0 || wd.deadlineSeconds > 0.0)
            par::Pool::global().enableWatchdog(wd);

        // Live telemetry: any sampler knob switches the background
        // sampler on (mirrors the dfault CLI's --metrics-* flags).
        metricsOut_ = config_.getString("metrics_out", "");
        const std::string interval =
            config_.getString("sample_interval", "");
        const std::string slo_specs = config_.getString("slo", "");
        const int metrics_port = static_cast<int>(
            config_.getIntIn("metrics_port", -1, -1, 65535));
        if (!metricsOut_.empty() || metrics_port >= 0 ||
            !slo_specs.empty() || !interval.empty()) {
            obs::SamplerOptions so;
            if (!interval.empty()) {
                const auto seconds =
                    obs::parseDurationSeconds(interval);
                if (!seconds || *seconds <= 0.0)
                    DFAULT_FATAL("malformed sample_interval '",
                                 interval, "' (want e.g. 100ms, 2s)");
                so.intervalSeconds = *seconds;
            }
            so.metricsOutPath = metricsOut_;
            so.metricsPort = metrics_port;
            std::string::size_type begin = 0;
            while (begin <= slo_specs.size() && !slo_specs.empty()) {
                auto end = slo_specs.find(',', begin);
                if (end == std::string::npos)
                    end = slo_specs.size();
                const std::string spec =
                    slo_specs.substr(begin, end - begin);
                if (!spec.empty()) {
                    std::string error;
                    const auto target =
                        obs::parseSloTarget(spec, &error);
                    if (!target)
                        DFAULT_FATAL("bad slo spec '", spec, "': ",
                                     error);
                    so.sloTargets.push_back(*target);
                }
                begin = end + 1;
            }
            obs::Sampler::instance().start(so);
            const auto &server = obs::Sampler::instance().server();
            if (server.running())
                DFAULT_INFORM("serving OpenMetrics on "
                              "http://127.0.0.1:",
                              server.port(), "/metrics");
        }
    }

    /** Timing report + stats dump when the bench binary exits. */
    ~Harness()
    {
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        const auto phases = obs::phaseTimes();
        if (!phases.empty()) {
            std::printf("\n%-36s %12s %8s\n", "phase", "seconds",
                        "calls");
            for (const auto &p : phases)
                std::printf("%-36s %12.3f %8llu\n", p.path.c_str(),
                            p.seconds,
                            static_cast<unsigned long long>(p.calls));
        }
        std::printf("\ntotal wall clock %.3f s\n", wall);
        if (perfCounters_)
            obs::printPerfTable(stdout);

        auto &tracer = obs::SpanTracer::instance();
        if (tracer.enabled()) {
            tracer.disable();
            const auto entries = tracer.drain();
            std::printf("\n");
            obs::printCriticalPath(stdout,
                                   obs::exclusiveTimes(entries));
            if (tracer.dropped() > 0)
                DFAULT_WARN("span ring overflow: ", tracer.dropped(),
                            " oldest trace entries dropped");
            if (!obs::writeTraceFile(traceEvents_, entries))
                DFAULT_FATAL("cannot write trace events to '",
                             traceEvents_, "'");
            DFAULT_INFORM("trace events written to ", traceEvents_,
                          " (load in ui.perfetto.dev)");
        }

        // Record what the injector actually did this run; fi.* stats
        // are excluded from the manifest digest, so a faulted run can
        // still digest-match a clean one.
        auto &inj = fi::Injector::instance();
        if (inj.armed()) {
            // Chaos hook for the drain path itself: lets CI check
            // that a single signal waits for the artifacts and a
            // second one still exits immediately.
            inj.maybeStall("shutdown.slow_drain", 0);
            for (const auto &[point, fired] : inj.firedCounts())
                obs::Registry::instance()
                    .gauge("fi.fired." + point,
                           "times this fault point fired")
                    .set(static_cast<double>(fired));
        }

        const auto &quarantine = campaign_->lastQuarantine();
        std::string quarantine_path =
            config_.getString("quarantine_out", "");
        if (quarantine_path.empty() && !statsOut_.empty())
            quarantine_path = statsOut_ + ".quarantine.json";
        if (!quarantine.empty() && !quarantine_path.empty()) {
            if (!core::writeQuarantineFile(quarantine, quarantine_path))
                DFAULT_FATAL("cannot write quarantine report to '",
                             quarantine_path, "'");
            DFAULT_INFORM(quarantine.size(),
                          " quarantined cell(s); report written to ",
                          quarantine_path);
        }

        // Stop the sampler before the stats/manifest epilogue: stop()
        // runs the final flush tick (last metrics snapshot, final SLO
        // verdicts) and emits closing slo_breach events while the
        // event sink is still open.
        auto &sampler = obs::Sampler::instance();
        const bool sampled = sampler.running() || sampler.ticks() > 0;
        sampler.stop();
        if (sampled && !metricsOut_.empty())
            DFAULT_INFORM("OpenMetrics snapshot written to ",
                          metricsOut_);

        if (!statsOut_.empty()) {
            obs::Registry::instance().writeFile(statsOut_);
            DFAULT_INFORM("stats written to ", statsOut_);
        }
        // Provenance: tie every figure artifact back to the run that
        // produced it (digest covers the deterministic stats only, so
        // a same-seed re-run reproduces it exactly).
        std::string manifest_path = manifestOut_;
        if (manifest_path.empty() && !statsOut_.empty())
            manifest_path = statsOut_ + ".manifest.json";
        if (!manifest_path.empty()) {
            obs::ManifestInfo info;
            info.tool = tool_;
            info.command = commandLine_;
            for (const std::string &key : config_.keys())
                info.config.emplace_back(key,
                                         config_.getString(key));
            info.threads = par::Pool::global().threads();
            info.statsPath = statsOut_;
            info.tracePath = traceEvents_;
            info.wallSeconds = wall;
            if (par::rootCancelToken().cancelled()) {
                info.interrupted = true;
                info.interruptReason =
                    par::rootCancelToken().reason();
            }
            info.resumedFromTick = resumedFromTick_;
            if (sampled) {
                info.metricsPath = metricsOut_;
                info.samplerTicks = sampler.ticks();
                info.sloSummaryJson = sampler.sloSummaryJson();
            }
            if (!obs::writeManifestFile(manifest_path, info))
                DFAULT_FATAL("cannot write manifest to '",
                             manifest_path, "'");
            DFAULT_INFORM("run manifest written to ", manifest_path);
        }
        obs::EventSink::instance().close();
        par::Pool::global().disableWatchdog();
        par::uninstallSignalHandlers();
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    sys::Platform &platform() { return *platform_; }
    core::CharacterizationCampaign &campaign() { return *campaign_; }
    const Config &config() const { return config_; }

    /** Repeats for PUE experiments (paper: 10). */
    int repeats() const
    {
        return static_cast<int>(config_.getInt("repeats", 10));
    }

    /**
     * What main should return: 128+signo after a signal-driven
     * shutdown (130 for SIGINT, 143 for SIGTERM), else @p rc.
     */
    static int exitCode(int rc = 0)
    {
        const int sig = par::shutdownExitCode();
        return sig != 0 ? sig : rc;
    }

    /**
     * Record that the serving phase resumed from its write-ahead
     * journal at @p tick; the manifest then carries resumed_from_tick
     * so downstream tooling can tell a resumed run from a fresh one.
     */
    void setResumedFromTick(std::int64_t tick)
    {
        resumedFromTick_ = tick;
    }

  private:
    Config config_;
    std::string tool_;
    std::string commandLine_;
    std::string statsOut_;
    std::string traceEvents_;
    std::string manifestOut_;
    std::string metricsOut_;
    std::int64_t resumedFromTick_ = -1;
    bool perfCounters_ = false;
    std::chrono::steady_clock::time_point start_;
    std::unique_ptr<sys::Platform> platform_;
    std::unique_ptr<core::CharacterizationCampaign> campaign_;
};

/** Print a horizontal rule sized to the preceding header. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Section banner naming the paper artifact being regenerated. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    rule();
    std::printf("%s  --  %s\n", artifact.c_str(), description.c_str());
    rule();
}

} // namespace dfault::bench

#endif // DFAULT_BENCH_HARNESS_HH
